"""Tests of the sqlite store index: build, incrementality, precedence."""

from __future__ import annotations

import json
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.runner.store import ResultsStore
from repro.store import INDEX_FILENAME, StoreIndex

FIXTURE_CACHE = Path(__file__).resolve().parent.parent / "fixtures" / "sweep_cache"

RESULT = {
    "empirical_detection_rate": {"mean": {"5": 0.75}},
    "measured_variance_ratio": 2.5,
    "measured_means": {},
    "piat_stats": {},
    "elapsed_seconds": 0.0,
}


@pytest.fixture
def fixture_store(tmp_path) -> Path:
    """A throwaway copy of the committed fixture store."""
    root = tmp_path / "store"
    shutil.copytree(FIXTURE_CACHE, root)
    return root


def query_one(index: StoreIndex, sql: str, *parameters):
    connection = sqlite3.connect(str(index.path))
    try:
        return connection.execute(sql, parameters).fetchall()
    finally:
        connection.close()


class TestBuild:
    def test_indexes_every_fixture_record(self, fixture_store):
        stats = StoreIndex(fixture_store).refresh()
        assert stats.total_records == 9
        assert stats.records_written == 9
        assert stats.files_scanned == 1  # the legacy flat file
        assert stats.files_removed == 0
        # Every fixture record is a smoke-preset cell of a registered figure.
        assert stats.total_labels == 9

    def test_index_lives_at_store_root(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        assert index.path == fixture_store / INDEX_FILENAME
        assert index.path.exists()

    def test_labels_point_at_registered_experiments(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        rows = query_one(
            index,
            "SELECT experiment, COUNT(*) FROM labels WHERE preset = 'smoke' "
            "GROUP BY experiment ORDER BY experiment",
        )
        assert dict(rows) == {"fig4": 1, "fig5": 2, "fig6": 2, "fig8": 4}

    def test_fig6_labels_carry_point_keys_and_seed(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        rows = query_one(
            index,
            "SELECT point_key, seed FROM labels "
            "WHERE experiment = 'fig6' AND preset = 'smoke' ORDER BY point_key",
        )
        assert [row[0] for row in rows] == [
            "fig6/utilization=0.05",
            "fig6/utilization=0.3",
        ]
        assert all(row[1] == 2003 for row in rows)

    def test_scalar_columns_match_the_jsonl_truth(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        store = ResultsStore(fixture_store)
        for fingerprint in store.fingerprints():
            record = store.get(fingerprint)
            rows = query_one(
                index,
                "SELECT seed, variance_ratio, result_json FROM records "
                "WHERE fingerprint = ?",
                fingerprint,
            )
            assert len(rows) == 1
            seed, ratio, result_json = rows[0]
            assert seed == record["config"]["seed"]
            assert ratio == record["result"]["measured_variance_ratio"]
            assert json.loads(result_json) == record["result"]

    def test_str_reports_the_row_counts(self, fixture_store):
        stats = StoreIndex(fixture_store).refresh()
        assert "9 records written" in str(stats)


class TestIncrementality:
    def test_second_refresh_on_unchanged_store_writes_zero_rows(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        stats = index.refresh()
        assert stats.files_scanned == 0
        assert stats.records_written == 0
        assert stats.records_removed == 0
        assert stats.labels_written == 0
        assert stats.total_records == 9  # nothing was lost either
        assert "0 records written" in str(stats)

    def test_new_record_scans_only_its_shard(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        store = ResultsStore(fixture_store)
        store.put("aa" + "0" * 62, {"seed": 7}, RESULT)
        stats = index.refresh()
        assert stats.files_scanned == 1  # the new shard, not the legacy file
        assert stats.records_written == 1
        assert stats.total_records == 10

    def test_removed_shard_drops_its_row(self, fixture_store, tmp_path):
        store = ResultsStore(fixture_store)
        fingerprint = "aa" + "0" * 62
        store.put(fingerprint, {"seed": 7}, RESULT)
        index = StoreIndex(fixture_store)
        index.refresh()
        store.shard_path(fingerprint).unlink()
        stats = index.refresh()
        assert stats.files_removed == 1
        assert stats.total_records == 9
        assert query_one(index, "SELECT 1 FROM records WHERE fingerprint = ?", fingerprint) == []


class TestPrecedence:
    def test_shard_record_shadows_legacy_record(self, fixture_store):
        store = ResultsStore(fixture_store)
        fingerprint = next(iter(store.fingerprints()))
        newer = dict(RESULT, measured_variance_ratio=99.0)
        store.put(fingerprint, {"seed": 2003}, newer)
        index = StoreIndex(fixture_store)
        index.refresh()
        rows = query_one(
            index, "SELECT variance_ratio FROM records WHERE fingerprint = ?", fingerprint
        )
        assert rows == [(99.0,)]

    def test_removing_the_shadowing_shard_resurfaces_the_legacy_record(self, fixture_store):
        store = ResultsStore(fixture_store)
        fingerprint = next(iter(store.fingerprints()))
        original = store.get(fingerprint)["result"]["measured_variance_ratio"]
        store.put(fingerprint, {"seed": 2003}, dict(RESULT, measured_variance_ratio=99.0))
        index = StoreIndex(fixture_store)
        index.refresh()
        store.shard_path(fingerprint).unlink()
        index.refresh()
        rows = query_one(
            index, "SELECT variance_ratio FROM records WHERE fingerprint = ?", fingerprint
        )
        assert rows == [(original,)]

    def test_shard_lines_for_other_fingerprints_are_ignored(self, tmp_path):
        store = ResultsStore(tmp_path)
        fingerprint = "ab" + "1" * 62
        store.put(fingerprint, {"seed": 1}, RESULT)
        alien = {
            "schema": 1,
            "kind": "cell",
            "fingerprint": "ab" + "2" * 62,
            "config": {"seed": 2},
            "result": RESULT,
        }
        with store.shard_path(fingerprint).open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(alien) + "\n")
        index = StoreIndex(tmp_path)
        stats = index.refresh()
        assert stats.total_records == 1
        rows = query_one(index, "SELECT fingerprint FROM records")
        assert rows == [(fingerprint,)]


class TestRobustness:
    def test_foreign_schema_records_are_skipped(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.shard_path("cc" + "3" * 62)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema": 99, "fingerprint": path.stem, "result": RESULT}) + "\n",
            encoding="utf-8",
        )
        stats = StoreIndex(tmp_path).refresh()
        assert stats.total_records == 0

    def test_capture_records_index_without_result_payload(self, tmp_path):
        store = ResultsStore(tmp_path)
        fingerprint = "dd" + "4" * 62
        store.put(
            fingerprint,
            {"kind": "gateway-capture", "seed": 5, "scenario": {}},
            {"intervals": {"train": {"low": [0.1] * 1000}}},
            kind="capture",
        )
        index = StoreIndex(tmp_path)
        index.refresh()
        rows = query_one(
            index,
            "SELECT kind, result_json FROM records WHERE fingerprint = ?",
            fingerprint,
        )
        assert rows == [("capture", None)]

    def test_schema_mismatch_drops_and_rebuilds(self, fixture_store):
        index = StoreIndex(fixture_store)
        index.refresh()
        connection = sqlite3.connect(str(index.path))
        connection.execute("UPDATE meta SET value = '999' WHERE key = 'index_schema'")
        connection.commit()
        connection.close()
        stats = index.refresh()
        assert stats.records_written == 9
        assert stats.total_records == 9

    def test_custom_index_path(self, fixture_store, tmp_path):
        path = tmp_path / "elsewhere" / "ix.sqlite"
        index = StoreIndex(fixture_store, path=path)
        index.refresh()
        assert path.exists()
        assert not (fixture_store / INDEX_FILENAME).exists()
