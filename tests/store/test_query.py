"""Tests of the typed StoreQuery API against an indexed fixture store."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.api import get_experiment
from repro.exceptions import ConfigurationError
from repro.runner import aggregate_cells
from repro.runner.cells import CellResult
from repro.runner.store import ResultsStore
from repro.store import StoreIndex, StoreQuery

FIXTURE_CACHE = Path(__file__).resolve().parent.parent / "fixtures" / "sweep_cache"


@pytest.fixture(scope="module")
def indexed_store(tmp_path_factory) -> Path:
    """One indexed copy of the fixture store, shared by the read-only tests."""
    root = tmp_path_factory.mktemp("store") / "cache"
    shutil.copytree(FIXTURE_CACHE, root)
    StoreIndex(root).refresh()
    return root


@pytest.fixture(scope="module")
def query(indexed_store) -> StoreQuery:
    return StoreQuery(indexed_store)


class TestPoints:
    def test_missing_index_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="repro cache index"):
            StoreQuery(tmp_path)

    def test_points_match_the_jsonl_records_byte_for_byte(self, query, indexed_store):
        """The acceptance criterion: served values == stored values."""
        store = ResultsStore(indexed_store)
        points = query.points(experiment="fig6")
        assert len(points) == 2
        for point in points:
            record = store.get(point.fingerprint)
            assert record is not None
            assert point.result == record["result"]
            assert json.dumps(point.result, sort_keys=True) == json.dumps(
                record["result"], sort_keys=True
            )

    def test_fig6_point_keys_and_seeds(self, query):
        points = query.points(experiment="fig6")
        assert [(p.point_key, p.seed) for p in points] == [
            ("fig6/utilization=0.05", 2003),
            ("fig6/utilization=0.3", 2003),
        ]

    def test_preset_filter(self, query):
        assert len(query.points(experiment="fig6", preset="smoke")) == 2
        assert query.points(experiment="fig6", preset="paper") == []

    def test_policy_filter_is_case_insensitive(self, query):
        all_points = query.points()
        cit = query.points(policy="cit")  # stored as "CIT"
        assert 0 < len(cit) < len(all_points)
        assert all(p.policy_kind == "CIT" for p in cit)
        assert query.points(policy="CIT") == cit
        vit = query.points(policy="vit")
        assert len(cit) + len(vit) == len(all_points)

    def test_seed_filter(self, query):
        assert len(query.points(experiment="fig6", seed=2003)) == 2
        assert query.points(experiment="fig6", seed=1999) == []

    def test_unlabelled_experiment_returns_empty(self, query):
        assert query.points(experiment="no_such_experiment") == []

    def test_point_returns_the_per_seed_records(self, query):
        records = query.point("fig6/utilization=0.05")
        assert len(records) == 1
        assert records[0].experiment == "fig6"
        assert records[0].seed == 2003
        assert query.point("fig6/utilization=0.99") == []

    def test_experiments_summary(self, query):
        summary = {entry["experiment"]: entry for entry in query.experiments()}
        assert set(summary) == {"fig4", "fig5", "fig6", "fig8"}
        assert summary["fig6"]["points"] == 2
        assert summary["fig6"]["records"] == 2
        assert "smoke" in summary["fig6"]["presets"]


class TestMissingCells:
    def test_fully_cached_grid_has_no_missing_cells(self, query):
        cells = get_experiment("fig6", "smoke", 2003).cells()
        assert query.missing_cells(cells) == []

    def test_uncached_grid_is_reported_in_full(self, query):
        cells = get_experiment("fig6", "fast", 2003).cells()
        missing = query.missing_cells(cells)
        assert [cell.key for cell in missing] == [cell.key for cell in cells]

    def test_accepts_a_gridspec(self, query):
        grid = get_experiment("fig6", "smoke", 2003).grid()
        assert query.missing_cells(grid) == []


class TestCIBand:
    @pytest.fixture()
    def two_seed_store(self, tmp_path):
        """A store holding fig6 smoke cells at two seeds, with fake results.

        Results are synthetic (cheap) but structurally real; what matters is
        that the bands served from sqlite match :func:`aggregate_cells` on
        the identical values exactly.
        """
        root = tmp_path / "cache"
        store = ResultsStore(root)
        cells = get_experiment("fig6", "smoke", 2003).cells(seeds=(2003, 2004))
        report = {}
        for cell in cells:
            offset = cell.seed - 2003
            result = CellResult(
                key=cell.key,
                fingerprint=cell.fingerprint(),
                empirical_detection_rate={
                    feature: {n: 0.5 + 0.01 * offset for n in cell.sample_sizes}
                    for feature in cell.features
                },
                measured_variance_ratio=2.0 + offset,
            )
            store.put(cell.fingerprint(), cell.config_dict(), result.to_json_dict())
            report[cell.key] = result
        StoreIndex(root).refresh()
        return root, cells, report

    def test_band_matches_the_aggregation_layer_byte_for_byte(self, two_seed_store):
        root, cells, report = two_seed_store
        query = StoreQuery(root)
        aggregated = aggregate_cells(cells, report, confidence=0.9)
        for point_key, expected in aggregated.results.items():
            band = query.ci_band(point_key, confidence=0.9)
            assert band.seeds == expected.seeds
            assert band.variance_ratio[0] == expected.measured_variance_ratio
            assert band.variance_ratio[1:] == expected.variance_ratio_ci
            for feature, by_n in expected.empirical_detection_rate.items():
                for n, mean in by_n.items():
                    served = band.detection_rate[feature][n]
                    assert served[0] == mean
                    assert served[1:] == expected.detection_rate_ci[feature][n]

    def test_single_seed_point_is_rejected(self, indexed_store):
        query = StoreQuery(indexed_store)
        with pytest.raises(ConfigurationError, match="at least two"):
            query.ci_band("fig6/utilization=0.05", confidence=0.95)

    def test_confidence_is_validated(self, indexed_store):
        query = StoreQuery(indexed_store)
        with pytest.raises(ConfigurationError, match="confidence"):
            query.ci_band("fig6/utilization=0.05", confidence=1.5)
