"""Tests of the ``repro serve`` JSON HTTP API over the fixture store."""

from __future__ import annotations

import json
import shutil
import threading
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api import get_experiment
from repro.runner import ResultsStore, SweepRunner
from repro.store import PENDING_FILENAME, StoreIndex, create_server

FIXTURE_CACHE = Path(__file__).resolve().parent.parent / "fixtures" / "sweep_cache"


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """An indexed fixture-store copy served on an ephemeral port."""
    root = tmp_path_factory.mktemp("served") / "cache"
    shutil.copytree(FIXTURE_CACHE, root)
    StoreIndex(root).refresh()
    server = create_server(root, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield root, f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get_json(base: str, path: str):
    with urllib.request.urlopen(base + path) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(base: str, path: str, payload) -> tuple:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def error_of(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    body = json.loads(excinfo.value.read().decode("utf-8"))
    return excinfo.value.code, body


class TestEndpoints:
    def test_root_lists_the_endpoints(self, served):
        root, base = served
        status, body = get_json(base, "/")
        assert status == 200
        assert "GET /points?experiment=NAME" in body["endpoints"]
        assert body["store"] == str(root)

    def test_experiments_lists_registry_and_index(self, served):
        _, base = served
        status, body = get_json(base, "/experiments")
        assert status == 200
        by_name = {entry["experiment"]: entry for entry in body["experiments"]}
        assert {"fig4", "fig5", "fig6", "fig8"} <= set(by_name)
        assert by_name["fig6"]["indexed"]["points"] == 2
        assert by_name["fig6"]["description"]
        # Registered but uncached experiments still appear, unindexed.
        assert by_name["ablation_tap"]["indexed"] is None

    def test_points_payload_matches_the_jsonl_records(self, served):
        """Acceptance: served values byte-identical to the stored records."""
        root, base = served
        status, body = get_json(base, "/points?experiment=fig6")
        assert status == 200
        assert body["experiment"] == "fig6"
        assert body["count"] == 2
        store = ResultsStore(root)
        for point in body["points"]:
            record = store.get(point["fingerprint"])
            assert record is not None
            assert point["result"] == record["result"]
            assert json.dumps(point["result"], sort_keys=True) == json.dumps(
                record["result"], sort_keys=True
            )

    def test_point_endpoint_returns_the_records(self, served):
        _, base = served
        key = urllib.parse.quote("fig6/utilization=0.05", safe="")
        status, body = get_json(base, f"/point/{key}")
        assert status == 200
        assert body["count"] == 1
        assert body["records"][0]["seed"] == 2003

    def test_report_matches_a_warm_sweep(self, served):
        """The served report equals one assembled by the sweep runner."""
        root, base = served
        status, body = get_json(base, "/report/fig6?preset=smoke")
        assert status == 200
        experiment = get_experiment("fig6", "smoke", 2003)
        runner = SweepRunner(store=ResultsStore(root))
        report = runner.run(experiment.cells())
        expected = experiment.assemble(report).to_text()
        assert body["report"] == expected

    def test_report_on_uncached_grid_is_409_with_missing_cells(self, served):
        _, base = served
        status, body = error_of(lambda: get_json(base, "/report/fig6?preset=fast"))
        assert status == 409
        assert len(body["missing"]) == 6
        assert "enqueue" in body["error"]


class TestErrorPaths:
    def test_points_without_experiment_is_400(self, served):
        _, base = served
        status, body = error_of(lambda: get_json(base, "/points"))
        assert status == 400
        assert "experiment" in body["error"]

    def test_unknown_experiment_is_404(self, served):
        _, base = served
        status, _ = error_of(lambda: get_json(base, "/points?experiment=nope"))
        assert status == 404

    def test_unknown_point_is_404(self, served):
        _, base = served
        status, _ = error_of(lambda: get_json(base, "/point/fig6%2Futilization%3D0.99"))
        assert status == 404

    def test_unknown_endpoint_is_404(self, served):
        _, base = served
        status, _ = error_of(lambda: get_json(base, "/nope"))
        assert status == 404

    def test_bad_seed_parameter_is_400(self, served):
        _, base = served
        status, _ = error_of(lambda: get_json(base, "/points?experiment=fig6&seed=x"))
        assert status == 400

    def test_single_seed_ci_band_is_400(self, served):
        _, base = served
        key = urllib.parse.quote("fig6/utilization=0.05", safe="")
        status, body = error_of(
            lambda: get_json(base, f"/point/{key}?confidence=0.95")
        )
        assert status == 400
        assert "at least two" in body["error"]

    def test_invalid_enqueue_body_is_400(self, served):
        _, base = served
        request = urllib.request.Request(
            served[1] + "/enqueue", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_enqueue_unknown_experiment_is_404(self, served):
        _, base = served
        status, _ = error_of(lambda: post_json(base, "/enqueue", {"experiment": "nope"}))
        assert status == 404


class TestEnqueue:
    def test_enqueue_writes_and_dedupes_pending_cells(self, served):
        root, base = served
        pending = root / PENDING_FILENAME
        status, body = post_json(base, "/enqueue", {"experiment": "fig4", "preset": "fast"})
        assert status == 200
        assert body["requested"] == body["enqueued"] > 0
        assert body["cached"] == 0
        lines = [
            json.loads(line) for line in pending.read_text().splitlines() if line.strip()
        ]
        enqueued = [line for line in lines if line["experiment"] == "fig4"]
        assert len(enqueued) == body["enqueued"]
        assert all(line["preset"] == "fast" and "config" in line for line in enqueued)

        status, again = post_json(base, "/enqueue", {"experiment": "fig4", "preset": "fast"})
        assert again["enqueued"] == 0
        assert again["already_pending"] == body["enqueued"]

    def test_fully_cached_experiment_enqueues_nothing(self, served):
        root, base = served
        status, body = post_json(base, "/enqueue", {"experiment": "fig6", "preset": "smoke"})
        assert status == 200
        assert body["cached"] == body["requested"] == 2
        assert body["enqueued"] == 0


class TestEnqueueCells:
    """``POST /enqueue`` with explicit cell payloads (the queue-worker route)."""

    def _payload(self, cell) -> dict:
        return {
            "cell_key": cell.key,
            "fingerprint": cell.fingerprint(),
            "config": cell.config_dict(),
        }

    def _fresh_cell(self, key="server/cells/fresh", seed=404):
        from repro.experiments import CollectionMode, ScenarioConfig
        from repro.runner import SweepCell

        return SweepCell(
            key=key,
            scenario=ScenarioConfig(n_hops=1, cross_utilization=0.42),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )

    def test_valid_cells_land_in_the_pending_file(self, served):
        root, base = served
        cell = self._fresh_cell()
        status, body = post_json(base, "/enqueue", {"cells": [self._payload(cell)]})
        assert status == 200
        assert body["requested"] == body["enqueued"] == 1
        lines = [
            json.loads(line)
            for line in (root / PENDING_FILENAME).read_text().splitlines()
            if line.strip()
        ]
        mine = [line for line in lines if line["fingerprint"] == cell.fingerprint()]
        assert len(mine) == 1
        assert mine[0]["cell_key"] == cell.key
        assert mine[0]["config"] == cell.config_dict()
        # A repeated POST dedupes against the pending file.
        _, again = post_json(base, "/enqueue", {"cells": [self._payload(cell)]})
        assert again["enqueued"] == 0
        assert again["already_pending"] == 1

    def test_cached_cells_are_reported_not_enqueued(self, served):
        _, base = served
        experiment = get_experiment("fig6", preset="smoke")
        cached = experiment.cells()[0]
        status, body = post_json(base, "/enqueue", {"cells": [self._payload(cached)]})
        assert status == 200
        assert body["cached"] == 1
        assert body["enqueued"] == 0

    def test_mismatched_fingerprint_is_400_naming_the_mismatch(self, served):
        _, base = served
        cell = self._fresh_cell(key="server/cells/tampered", seed=405)
        payload = self._payload(cell)
        payload["fingerprint"] = "deadbeefdeadbeef"
        status, body = error_of(
            lambda: post_json(base, "/enqueue", {"cells": [payload]})
        )
        assert status == 400
        assert "does not match" in body["error"]
        assert "deadbeefdeadbeef" in body["error"]
        assert cell.fingerprint() in body["error"]

    def test_tampered_config_is_refused_the_same_way(self, served):
        _, base = served
        cell = self._fresh_cell(key="server/cells/config-tamper", seed=406)
        payload = self._payload(cell)
        payload["config"] = dict(payload["config"], trials=999)
        status, body = error_of(
            lambda: post_json(base, "/enqueue", {"cells": [payload]})
        )
        assert status == 400
        assert "does not match" in body["error"]

    def test_incomplete_cell_entry_is_400_naming_the_position(self, served):
        _, base = served
        cell = self._fresh_cell(key="server/cells/incomplete", seed=407)
        payload = self._payload(cell)
        del payload["config"]
        status, body = error_of(
            lambda: post_json(
                base, "/enqueue", {"cells": [self._payload(cell), payload]}
            )
        )
        assert status == 400
        assert "cells[1]" in body["error"]

    def test_empty_cells_list_is_400(self, served):
        _, base = served
        status, body = error_of(lambda: post_json(base, "/enqueue", {"cells": []}))
        assert status == 400
        assert "non-empty" in body["error"]


class TestConcurrency:
    def test_hammering_points_returns_identical_bodies(self, served):
        _, base = served
        baseline = get_json(base, "/points?experiment=fig6")[1]

        def fetch(_):
            return get_json(base, "/points?experiment=fig6")

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(fetch, range(32)))
        assert all(status == 200 for status, _ in outcomes)
        assert all(body == baseline for _, body in outcomes)
