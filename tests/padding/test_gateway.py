"""Tests for the sender gateway (queue + padding timer + dummy injection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PaddingError
from repro.network.link import CountingSink
from repro.padding import (
    AdaptiveMaskingGateway,
    ConstantInterval,
    InterruptDisturbance,
    NormalInterval,
    SenderGateway,
)
from repro.traffic import CBRSource, PacketKind, PoissonSource


def make_gateway(simulator, sink, rng, interval=ConstantInterval(0.01), disturbance=None, **kwargs):
    return SenderGateway(
        simulator,
        interval_generator=interval,
        output=sink,
        rng=rng,
        disturbance=disturbance,
        **kwargs,
    )


class TestPaddingInvariants:
    def test_output_rate_is_timer_rate_regardless_of_payload(self, simulator, rng):
        """Padded output is one packet per timer interval: payload rate is hidden."""
        for rate in (10.0, 40.0):
            sim_sink = CountingSink()
            gateway = make_gateway(simulator, sim_sink, rng)
            source = CBRSource(simulator, gateway.accept_payload, rate=rate, rng=rng)
            gateway.start()
            source.start()
            start_count = sim_sink.total
            t0 = simulator.now
            simulator.run(until=t0 + 10.0)
            gateway.stop()
            source.stop()
            emitted = sim_sink.total - start_count
            assert emitted == pytest.approx(1000, abs=3)

    def test_payload_plus_dummy_equals_total(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(simulator, sink, rng)
        source = CBRSource(simulator, gateway.accept_payload, rate=40.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=20.0)
        total = gateway.counters.get("packets_sent")
        assert total == gateway.counters.get("payload_sent") + gateway.counters.get("dummy_sent")
        assert sink.total == total

    def test_all_payload_is_eventually_sent_fifo(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(simulator, sink, rng)
        source = CBRSource(simulator, gateway.accept_payload, rate=40.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=30.0)
        source.stop()
        simulator.run(until=32.0)
        # 100 pps padding > 40 pps payload: queue drains, all payload forwarded.
        sent_payload = [p for p in sink.packets if p.kind is PacketKind.PAYLOAD]
        assert gateway.counters.get("payload_dropped") == 0
        assert len(sent_payload) == gateway.counters.get("payload_received")
        created = [p.created_at for p in sent_payload]
        assert created == sorted(created)

    def test_dummy_fraction_reflects_payload_rate(self, simulator, rng):
        results = {}
        for rate in (10.0, 40.0):
            sink = CountingSink(keep_packets=False)
            gateway = make_gateway(simulator, sink, rng)
            source = CBRSource(simulator, gateway.accept_payload, rate=rate, rng=rng)
            gateway.start()
            source.start()
            t0 = simulator.now
            simulator.run(until=t0 + 20.0)
            gateway.stop()
            source.stop()
            results[rate] = gateway.dummy_fraction
        assert results[10.0] == pytest.approx(0.9, abs=0.02)
        assert results[40.0] == pytest.approx(0.6, abs=0.02)

    def test_cit_piat_without_disturbance_is_exactly_periodic(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(simulator, sink, rng, disturbance=None)
        source = CBRSource(simulator, gateway.accept_payload, rate=40.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=5.0)
        times = np.array([p.sent_at for p in sink.packets])
        assert np.allclose(np.diff(times), 0.01, atol=1e-9)

    def test_dummy_packets_match_payload_size(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(simulator, sink, rng)
        source = CBRSource(
            simulator, gateway.accept_payload, rate=10.0, rng=rng, packet_size_bytes=256
        )
        gateway.start()
        source.start()
        simulator.run(until=5.0)
        sizes = {p.size_bytes for p in sink.packets if p.is_dummy}
        # The first dummy may be emitted before any payload arrives (default size);
        # all dummies after the first payload arrival must copy the payload size.
        assert 256 in sizes
        assert sizes <= {256, 512}


class TestDisturbanceCoupling:
    def test_piat_variance_grows_with_payload_rate(self, simulator, rng):
        """The core leak: higher payload rate -> larger padded-PIAT variance.

        Payload is Poisson so that NIC interrupts are independent of the
        padding timer's phase (a perfectly periodic payload that is
        phase-locked to the timer would never block it — see the note in
        ``repro.experiments.base`` on why the experiments use Poisson
        payload).
        """
        variances = {}
        disturbance = InterruptDisturbance()
        for rate in (10.0, 40.0):
            sink = CountingSink()
            gateway = make_gateway(simulator, sink, rng, disturbance=disturbance)
            source = PoissonSource(simulator, gateway.accept_payload, rate=rate, rng=rng)
            gateway.start()
            source.start()
            t0 = simulator.now
            simulator.run(until=t0 + 120.0)
            gateway.stop()
            source.stop()
            times = np.array([p.sent_at for p in sink.packets if p.sent_at >= t0])
            variances[rate] = np.var(np.diff(times))
        assert variances[40.0] > variances[10.0]
        ratio = variances[40.0] / variances[10.0]
        assert 1.1 < ratio < 4.0

    def test_piat_mean_is_independent_of_payload_rate(self, simulator, rng):
        means = {}
        for rate in (10.0, 40.0):
            sink = CountingSink()
            gateway = make_gateway(simulator, sink, rng, disturbance=InterruptDisturbance())
            source = PoissonSource(simulator, gateway.accept_payload, rate=rate, rng=rng)
            gateway.start()
            source.start()
            t0 = simulator.now
            simulator.run(until=t0 + 60.0)
            gateway.stop()
            source.stop()
            times = np.array([p.sent_at for p in sink.packets if p.sent_at >= t0])
            means[rate] = np.mean(np.diff(times))
        assert means[10.0] == pytest.approx(means[40.0], rel=1e-3)
        assert means[10.0] == pytest.approx(0.01, rel=1e-3)


class TestVITGateway:
    def test_vit_piat_variance_dominated_by_timer(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(
            simulator,
            sink,
            rng,
            interval=NormalInterval(0.01, 0.002),
            disturbance=InterruptDisturbance(),
        )
        source = CBRSource(simulator, gateway.accept_payload, rate=40.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=120.0)
        times = np.array([p.sent_at for p in sink.packets])
        piat_std = np.std(np.diff(times))
        assert piat_std == pytest.approx(0.002, rel=0.15)

    def test_transmissions_are_strictly_ordered(self, simulator, rng):
        sink = CountingSink()
        gateway = make_gateway(
            simulator, sink, rng, interval=NormalInterval(0.002, 0.002)
        )
        source = CBRSource(simulator, gateway.accept_payload, rate=40.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=20.0)
        times = np.array([p.sent_at for p in sink.packets])
        assert np.all(np.diff(times) > 0.0)


class TestQueueAndErrors:
    def test_bounded_queue_drops_excess_payload(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        gateway = make_gateway(simulator, sink, rng, max_queue_packets=5)
        # Payload at 400 pps vastly exceeds the 100 pps padded rate.
        source = CBRSource(simulator, gateway.accept_payload, rate=400.0, rng=rng)
        gateway.start()
        source.start()
        simulator.run(until=10.0)
        assert gateway.counters.get("payload_dropped") > 0
        assert gateway.queue_depth <= 5
        assert gateway.max_queue_depth_seen <= 5

    def test_double_start_rejected(self, simulator, rng):
        gateway = make_gateway(simulator, CountingSink(), rng)
        gateway.start()
        with pytest.raises(PaddingError):
            gateway.start()

    def test_stop_halts_output(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        gateway = make_gateway(simulator, sink, rng)
        gateway.start()
        simulator.run(until=1.0)
        gateway.stop()
        count = sink.total
        simulator.run(until=5.0)
        assert sink.total <= count + 1  # at most the already-scheduled interrupt

    def test_invalid_construction(self, simulator, rng):
        with pytest.raises(PaddingError):
            SenderGateway(simulator, ConstantInterval(0.01), output="nope", rng=rng)
        with pytest.raises(PaddingError):
            make_gateway(simulator, CountingSink(), rng, max_queue_packets=0)

    def test_dummy_fraction_before_any_send_raises(self, simulator, rng):
        gateway = make_gateway(simulator, CountingSink(), rng)
        with pytest.raises(PaddingError):
            _ = gateway.dummy_fraction


class TestAdaptiveMaskingGateway:
    def test_padded_rate_tracks_payload_rate(self, simulator, rng):
        """The adaptive baseline leaks the payload rate by design."""
        rates = {}
        for rate in (10.0, 40.0):
            sink = CountingSink(keep_packets=False)
            gateway = AdaptiveMaskingGateway(
                simulator,
                ConstantInterval(0.01),
                CountingSink(keep_packets=False),
                rng=rng,
                headroom=1.5,
                min_interval=1e-3,
                max_interval=0.05,
            )
            gateway.output = sink
            source = CBRSource(simulator, gateway.accept_payload, rate=rate, rng=rng)
            gateway.start()
            source.start()
            t0 = simulator.now
            simulator.run(until=t0 + 30.0)
            gateway.stop()
            source.stop()
            rates[rate] = sink.total / 30.0
        assert rates[40.0] > rates[10.0] * 1.5

    def test_validation(self, simulator, rng):
        with pytest.raises(PaddingError):
            AdaptiveMaskingGateway(
                simulator, ConstantInterval(0.01), CountingSink(), rng=rng, headroom=0.5
            )
        with pytest.raises(PaddingError):
            AdaptiveMaskingGateway(
                simulator, ConstantInterval(0.01), CountingSink(), rng=rng, rate_smoothing=0.0
            )
        with pytest.raises(PaddingError):
            AdaptiveMaskingGateway(
                simulator,
                ConstantInterval(0.01),
                CountingSink(),
                rng=rng,
                min_interval=0.1,
                max_interval=0.01,
            )
