"""Tests for CIT/VIT interval generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PaddingError
from repro.padding import (
    ConstantInterval,
    ExponentialInterval,
    LognormalInterval,
    NormalInterval,
    UniformInterval,
    make_interval_generator,
)
from repro.padding.timer import MIN_INTERVAL_S


def _draws(generator, rng, n=20000):
    return np.array([generator.sample(rng) for _ in range(n)])


class TestConstantInterval:
    def test_every_draw_equals_mean(self, rng):
        gen = ConstantInterval(0.01)
        assert gen.is_constant
        assert gen.variance == 0.0
        assert all(gen.sample(rng) == 0.01 for _ in range(100))

    def test_invalid_mean_rejected(self):
        with pytest.raises(PaddingError):
            ConstantInterval(0.0)


class TestNormalInterval:
    def test_moments_match_design(self, rng):
        gen = NormalInterval(0.01, 0.001)
        draws = _draws(gen, rng)
        assert np.mean(draws) == pytest.approx(0.01, rel=0.01)
        assert np.std(draws) == pytest.approx(0.001, rel=0.05)

    def test_zero_std_degenerates_to_cit(self, rng):
        gen = NormalInterval(0.01, 0.0)
        assert gen.is_constant
        assert gen.sample(rng) == 0.01

    def test_draws_are_strictly_positive(self, rng):
        # sigma comparable to the mean: without clipping some draws would be <= 0
        gen = NormalInterval(0.001, 0.01)
        draws = _draws(gen, rng, n=5000)
        assert np.all(draws >= MIN_INTERVAL_S)

    def test_negative_std_rejected(self):
        with pytest.raises(PaddingError):
            NormalInterval(0.01, -1e-3)


class TestUniformInterval:
    def test_moments_match_design(self, rng):
        gen = UniformInterval(0.01, 0.002)
        draws = _draws(gen, rng)
        assert np.mean(draws) == pytest.approx(0.01, rel=0.01)
        assert np.std(draws) == pytest.approx(0.002, rel=0.05)

    def test_bounds(self, rng):
        gen = UniformInterval(0.01, 0.002)
        draws = _draws(gen, rng, n=5000)
        half_width = 0.002 * np.sqrt(3)
        assert np.all(draws >= 0.01 - half_width - 1e-12)
        assert np.all(draws <= 0.01 + half_width + 1e-12)

    def test_too_wide_rejected(self):
        with pytest.raises(PaddingError):
            UniformInterval(0.01, 0.01)


class TestExponentialInterval:
    def test_moments_match_design(self, rng):
        gen = ExponentialInterval(0.01, 0.003)
        draws = _draws(gen, rng)
        assert np.mean(draws) == pytest.approx(0.01, rel=0.02)
        assert np.std(draws) == pytest.approx(0.003, rel=0.05)

    def test_std_greater_than_mean_rejected(self):
        with pytest.raises(PaddingError):
            ExponentialInterval(0.01, 0.02)

    def test_minimum_is_offset(self, rng):
        gen = ExponentialInterval(0.01, 0.004)
        draws = _draws(gen, rng, n=5000)
        assert np.all(draws >= 0.006 - 1e-12)


class TestLognormalInterval:
    def test_moments_match_design(self, rng):
        gen = LognormalInterval(0.01, 0.005)
        draws = _draws(gen, rng, n=50000)
        assert np.mean(draws) == pytest.approx(0.01, rel=0.02)
        assert np.std(draws) == pytest.approx(0.005, rel=0.05)

    def test_always_positive_even_with_large_std(self, rng):
        gen = LognormalInterval(0.01, 0.05)
        draws = _draws(gen, rng, n=5000)
        assert np.all(draws > 0.0)

    def test_zero_std(self, rng):
        assert LognormalInterval(0.01, 0.0).sample(rng) == 0.01


class TestFactory:
    @pytest.mark.parametrize(
        "family, cls",
        [
            ("constant", ConstantInterval),
            ("cit", ConstantInterval),
            ("normal", NormalInterval),
            ("gaussian", NormalInterval),
            ("uniform", UniformInterval),
            ("exponential", ExponentialInterval),
            ("lognormal", LognormalInterval),
        ],
    )
    def test_family_dispatch(self, family, cls):
        std = None if cls is ConstantInterval else 1e-3
        gen = make_interval_generator(family, 0.01, std)
        assert isinstance(gen, cls)

    def test_unknown_family_rejected(self):
        with pytest.raises(PaddingError):
            make_interval_generator("weibull", 0.01, 1e-3)

    def test_constant_with_std_rejected(self):
        with pytest.raises(PaddingError):
            make_interval_generator("cit", 0.01, 1e-3)

    @given(
        mean=st.floats(min_value=1e-3, max_value=0.1),
        frac=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_families_respect_design_parameters(self, mean, frac):
        std = mean * frac
        for family in ("normal", "uniform", "exponential", "lognormal"):
            gen = make_interval_generator(family, mean, std)
            assert gen.mean == pytest.approx(mean)
            assert gen.std == pytest.approx(std)
            assert gen.variance == pytest.approx(std**2)
