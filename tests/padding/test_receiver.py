"""Tests for the receiver gateway (GW2)."""

from __future__ import annotations

import pytest

from repro.exceptions import PaddingError
from repro.network.link import CountingSink
from repro.padding import ConstantInterval, ReceiverGateway, SenderGateway
from repro.traffic import CBRSource, Packet, PacketKind


class TestReceiverGateway:
    def test_strips_dummies_and_forwards_payload(self, simulator):
        destination = CountingSink()
        receiver = ReceiverGateway(simulator, destination=destination)
        receiver.accept(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        receiver.accept(Packet(created_at=0.0, kind=PacketKind.PAYLOAD))
        assert receiver.dummies_discarded == 1
        assert receiver.payload_delivered == 1
        assert destination.total == 1
        assert destination.packets[0].is_payload

    def test_callable_interface(self, simulator):
        receiver = ReceiverGateway(simulator)
        receiver(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        assert receiver.dummies_discarded == 1

    def test_goodput_fraction(self, simulator):
        receiver = ReceiverGateway(simulator)
        for _ in range(3):
            receiver.accept(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        receiver.accept(Packet(created_at=0.0, kind=PacketKind.PAYLOAD))
        assert receiver.goodput_fraction == pytest.approx(0.25)

    def test_goodput_before_any_packet_raises(self, simulator):
        with pytest.raises(PaddingError):
            _ = ReceiverGateway(simulator).goodput_fraction

    def test_invalid_destination_rejected(self, simulator):
        with pytest.raises(PaddingError):
            ReceiverGateway(simulator, destination="nope")

    def test_latency_is_recorded(self, simulator):
        receiver = ReceiverGateway(simulator)
        simulator.schedule(1.0, lambda: receiver.accept(Packet(created_at=0.25)))
        simulator.run()
        assert receiver.mean_payload_latency() == pytest.approx(0.75)


class TestEndToEnd:
    def test_sender_to_receiver_conserves_payload(self, simulator, streams):
        """Integration: payload in equals payload out; dummies never leak through."""
        destination = CountingSink()
        receiver = ReceiverGateway(simulator, destination=destination)
        gateway = SenderGateway(
            simulator,
            ConstantInterval(0.01),
            output=receiver.accept,
            rng=streams.get("gateway"),
        )
        source = CBRSource(
            simulator, gateway.accept_payload, rate=40.0, rng=streams.get("payload")
        )
        gateway.start()
        source.start()
        simulator.run(until=30.0)
        source.stop()
        simulator.run(until=31.0)

        payload_in = gateway.counters.get("payload_received")
        assert destination.total == payload_in
        assert receiver.payload_delivered == payload_in
        assert receiver.dummies_discarded == gateway.counters.get("dummy_sent")
        assert all(p.kind is PacketKind.PAYLOAD for p in destination.packets)

    def test_payload_latency_bounded_by_queueing_at_padding_rate(self, simulator, streams):
        receiver = ReceiverGateway(simulator)
        gateway = SenderGateway(
            simulator,
            ConstantInterval(0.01),
            output=receiver.accept,
            rng=streams.get("gateway"),
        )
        source = CBRSource(
            simulator, gateway.accept_payload, rate=40.0, rng=streams.get("payload")
        )
        gateway.start()
        source.start()
        simulator.run(until=30.0)
        # With 100 pps padding and 40 pps payload the queue never builds up,
        # so worst-case latency is about one timer interval plus jitter.
        assert receiver.mean_payload_latency() < 0.02
        assert receiver.latency.maximum() < 0.05
