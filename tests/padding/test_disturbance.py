"""Tests for the gateway interrupt-disturbance model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PaddingError
from repro.padding import InterruptDisturbance
from repro.units import PAPER_HIGH_RATE_PPS, PAPER_LOW_RATE_PPS


class TestSampling:
    def test_delays_are_non_negative(self, rng):
        model = InterruptDisturbance()
        delays = [
            model.sample_delay(rng, payload_arrival_times=[], timer_due_at=1.0)
            for _ in range(1000)
        ]
        assert all(d >= 0.0 for d in delays)

    def test_zero_model_gives_zero_delay(self, rng):
        model = InterruptDisturbance(base_jitter_std=0.0, blocking_delay_mean=0.0)
        assert model.sample_delay(rng, [0.999], timer_due_at=1.0) == 0.0

    def test_blocking_only_counts_arrivals_in_window(self, rng):
        model = InterruptDisturbance(base_jitter_std=0.0, blocking_window=1e-3, blocking_delay_mean=1e-4)
        # Arrival well before the window: no blocking delay.
        assert model.sample_delay(rng, [0.990], timer_due_at=1.0) == 0.0
        # Arrival inside the window: strictly positive delay.
        assert model.sample_delay(rng, [0.9995], timer_due_at=1.0) > 0.0

    def test_more_blockers_means_larger_mean_delay(self, rng):
        model = InterruptDisturbance(base_jitter_std=0.0, blocking_window=1e-2, blocking_delay_mean=1e-4)
        few = np.mean([model.sample_delay(rng, [0.995], 1.0) for _ in range(3000)])
        many = np.mean(
            [model.sample_delay(rng, [0.991, 0.993, 0.995, 0.997, 0.999], 1.0) for _ in range(3000)]
        )
        assert many > few

    def test_validation(self):
        with pytest.raises(PaddingError):
            InterruptDisturbance(base_jitter_std=-1.0)
        with pytest.raises(PaddingError):
            InterruptDisturbance(blocking_window=-1.0)
        with pytest.raises(PaddingError):
            InterruptDisturbance(blocking_delay_mean=-1.0)


class TestAnalyticVariance:
    def test_variance_increases_with_payload_rate(self):
        model = InterruptDisturbance()
        low = model.piat_variance(PAPER_LOW_RATE_PPS)
        high = model.piat_variance(PAPER_HIGH_RATE_PPS)
        assert high > low > 0.0

    def test_variance_ratio_exceeds_one_for_cit(self):
        model = InterruptDisturbance()
        r = model.variance_ratio(PAPER_LOW_RATE_PPS, PAPER_HIGH_RATE_PPS)
        assert r > 1.0

    def test_default_calibration_lands_in_target_regime(self):
        # DESIGN.md calibration target: r between 1.5 and 2.5 for the
        # zero-cross-traffic CIT configuration.
        model = InterruptDisturbance()
        r = model.variance_ratio(PAPER_LOW_RATE_PPS, PAPER_HIGH_RATE_PPS)
        assert 1.3 < r < 2.6

    def test_timer_variance_pushes_ratio_toward_one(self):
        model = InterruptDisturbance()
        r_cit = model.variance_ratio(10.0, 40.0, timer_variance=0.0)
        r_vit = model.variance_ratio(10.0, 40.0, timer_variance=(1e-3) ** 2)
        assert r_vit < r_cit
        assert r_vit == pytest.approx(1.0, abs=1e-3)

    def test_net_variance_pushes_ratio_toward_one(self):
        model = InterruptDisturbance()
        r_clean = model.variance_ratio(10.0, 40.0)
        r_noisy = model.variance_ratio(10.0, 40.0, net_variance=1e-7)
        assert r_noisy < r_clean

    def test_piat_variance_is_twice_delay_variance(self):
        model = InterruptDisturbance()
        assert model.piat_variance(25.0) == pytest.approx(2.0 * model.delay_variance(25.0))

    def test_negative_rate_rejected(self):
        with pytest.raises(PaddingError):
            InterruptDisturbance().delay_variance(-1.0)

    def test_rate_ordering_enforced(self):
        with pytest.raises(PaddingError):
            InterruptDisturbance().variance_ratio(40.0, 10.0)

    def test_degenerate_model_rejected(self):
        model = InterruptDisturbance(base_jitter_std=0.0, blocking_delay_mean=0.0)
        with pytest.raises(PaddingError):
            model.variance_ratio(10.0, 40.0)

    @given(
        low=st.floats(min_value=1.0, max_value=50.0),
        extra=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_ratio_always_at_least_one(self, low, extra):
        model = InterruptDisturbance()
        r = model.variance_ratio(low, low + extra)
        assert r >= 1.0

    def test_empirical_delay_variance_matches_analytic(self, rng):
        model = InterruptDisturbance()
        rate = 40.0
        window_arrivals = []
        # Simulate Poisson payload arrivals in the blocking window for each interrupt.
        delays = []
        for _ in range(40000):
            k = rng.poisson(rate * model.blocking_window)
            arrivals = list(1.0 - rng.uniform(0.0, model.blocking_window, size=k))
            delays.append(model.sample_delay(rng, arrivals, timer_due_at=1.0))
        empirical = np.var(delays)
        analytic = model.delay_variance(rate)
        assert empirical == pytest.approx(analytic, rel=0.15)
        del window_arrivals
