"""Tests for padding policies."""

from __future__ import annotations

import pytest

from repro.exceptions import PaddingError
from repro.padding import PaddingPolicy, cit_policy, vit_policy
from repro.padding.timer import ConstantInterval, NormalInterval, UniformInterval


class TestPaddingPolicy:
    def test_cit_policy_defaults_to_paper_interval(self):
        policy = cit_policy()
        assert policy.kind == "CIT"
        assert policy.mean_interval == pytest.approx(0.01)
        assert policy.sigma_t == 0.0
        assert policy.padded_rate_pps == pytest.approx(100.0)
        assert isinstance(policy.make_timer(), ConstantInterval)

    def test_vit_policy_creates_requested_family(self):
        policy = vit_policy(sigma_t=1e-3, family="uniform")
        assert policy.kind == "VIT"
        assert policy.timer_variance == pytest.approx(1e-6)
        timer = policy.make_timer()
        assert isinstance(timer, UniformInterval)
        assert timer.std == pytest.approx(1e-3)

    def test_vit_default_family_is_normal(self):
        assert isinstance(vit_policy(sigma_t=5e-4).make_timer(), NormalInterval)

    def test_vit_requires_positive_sigma(self):
        with pytest.raises(PaddingError):
            vit_policy(sigma_t=0.0)

    def test_policy_validation(self):
        with pytest.raises(PaddingError):
            PaddingPolicy(name="x", kind="CIT", mean_interval=0.01, sigma_t=1e-3)
        with pytest.raises(PaddingError):
            PaddingPolicy(name="x", kind="VIT", mean_interval=0.01, sigma_t=0.0)
        with pytest.raises(PaddingError):
            PaddingPolicy(name="x", kind="FOO", mean_interval=0.01)
        with pytest.raises(PaddingError):
            PaddingPolicy(name="x", kind="CIT", mean_interval=0.0)

    def test_describe_mentions_parameters(self):
        assert "CIT" in cit_policy().describe()
        description = vit_policy(sigma_t=1e-3).describe()
        assert "VIT" in description
        assert "sigma_T" in description

    def test_names_are_informative(self):
        assert cit_policy().name == "CIT-10ms"
        assert "sd1" in vit_policy(sigma_t=1e-3).name
