"""Declarative scenarios: dict/TOML loading, round-trips, end-to-end runs."""

from __future__ import annotations

import pytest

from repro.api import (
    TOML_AVAILABLE,
    Experiment,
    ScenarioExperiment,
    ScenarioPoint,
    ScenarioSpec,
    parse_policy,
    run_experiment,
)
from repro.exceptions import ConfigurationError
from repro.runner import ResultsStore, SweepRunner

needs_toml = pytest.mark.skipif(not TOML_AVAILABLE, reason="no TOML parser available")

#: A scenario file a user could write with no Python: a CIT stream crossing a
#: loaded multi-hop path, swept over utilization × hops.
WAN_TOML = """\
name = "test_wan"
title = "CIT across a loaded WAN path"
description = "Declared in TOML; runs through the sweep runner unchanged."

[base]
policy = "cit"
link_rate_bps = 80e6

[grid]
hops = [1, 5]
utilizations = [0.1, 0.3]

[run]
mode = "analytic"
sample_sizes = [200]
trials = 4
seed = 99
"""


def wan_spec_dict():
    return {
        "name": "test_wan",
        "title": "CIT across a loaded WAN path",
        "description": "Declared in TOML; runs through the sweep runner unchanged.",
        "base": {"policy": "cit", "link_rate_bps": 80e6},
        "grid": {"hops": [1, 5], "utilizations": [0.1, 0.3]},
        "run": {"mode": "analytic", "sample_sizes": [200], "trials": 4, "seed": 99},
    }


class TestParsePolicy:
    def test_string_forms(self):
        assert parse_policy("cit").kind == "CIT"
        assert parse_policy("cit:0.02").mean_interval == 0.02
        vit = parse_policy("vit:1e-4")
        assert vit.kind == "VIT" and vit.sigma_t == 1e-4
        vit = parse_policy("vit:1e-4:0.02")
        assert vit.sigma_t == 1e-4 and vit.mean_interval == 0.02

    def test_table_forms(self):
        cit = parse_policy({"kind": "CIT", "mean_interval": 0.02})
        assert cit.kind == "CIT" and cit.mean_interval == 0.02
        vit = parse_policy({"kind": "vit", "sigma_t": 1e-3, "family": "uniform"})
        assert vit.family == "uniform"

    @pytest.mark.parametrize(
        "bad",
        ["cat", "vit", "cit:fast", "vit:1e-4:0.02:normal:extra", 42],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            parse_policy(bad)

    def test_rejects_unknown_table_keys_and_kinds(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            parse_policy({"kind": "CIT", "tau": 0.01})
        with pytest.raises(ConfigurationError, match="kind"):
            parse_policy({"mean_interval": 0.01})
        with pytest.raises(ConfigurationError, match="sigma_t"):
            parse_policy({"kind": "VIT"})


class TestScenarioSpec:
    def test_minimal_spec_is_one_base_point(self):
        spec = ScenarioSpec.from_dict({"name": "tiny"})
        cells = ScenarioExperiment(spec).cells()
        assert [cell.key for cell in cells] == ["tiny"]

    def test_axes_expand_to_the_grid_product(self):
        spec = ScenarioSpec.from_dict(wan_spec_dict())
        keys = [cell.key for cell in ScenarioExperiment(spec).cells()]
        assert len(keys) == 4
        assert "test_wan/hops=1/utilization=0.1" in keys
        assert "test_wan/hops=5/utilization=0.3" in keys

    def test_name_is_required_and_key_safe(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({"title": "anonymous"})
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({"name": "bad/name"})

    @pytest.mark.parametrize(
        "mutation",
        [
            {"extra": 1},
            {"base": {"policy": "cit", "bandwidth": 1}},
            {"grid": {"speeds": [1]}},
            {"run": {"jobs": 4}},
        ],
    )
    def test_unknown_keys_fail_loudly(self, mutation):
        document = wan_spec_dict()
        for key, value in mutation.items():
            document[key] = value
        with pytest.raises(ConfigurationError, match="unknown"):
            ScenarioSpec.from_dict(document)

    def test_dict_round_trip_preserves_cells_and_fingerprints(self):
        spec = ScenarioSpec.from_dict(wan_spec_dict())
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        original = [(c.key, c.fingerprint()) for c in ScenarioExperiment(spec).cells()]
        round_tripped = [
            (c.key, c.fingerprint()) for c in ScenarioExperiment(rebuilt).cells()
        ]
        assert original == round_tripped

    def test_policy_axis_round_trip(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "families",
                "grid": {"policies": ["cit", "vit:1e-3", {"kind": "VIT", "sigma_t": 1e-4}]},
                "run": {"mode": "analytic", "sample_sizes": [100], "trials": 4},
            }
        )
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert [c.fingerprint() for c in ScenarioExperiment(spec).cells()] == [
            c.fingerprint() for c in ScenarioExperiment(rebuilt).cells()
        ]


def points_spec_dict():
    """A scenario enumerating explicit [[points]] instead of a [grid]."""
    return {
        "name": "named_points",
        "title": "Curated defence configurations",
        "base": {"policy": "cit", "n_hops": 5, "cross_utilization": 0.2},
        "points": [
            {"key": "baseline"},
            {"key": "short-path", "n_hops": 1, "cross_utilization": 0.1},
            {"key": "vit", "policy": "vit:1e-4"},
        ],
        "run": {"mode": "analytic", "sample_sizes": [200], "trials": 4, "seed": 7},
    }


POINTS_TOML = """\
name = "named_points"
title = "Curated defence configurations"

[base]
policy = "cit"
n_hops = 5
cross_utilization = 0.2

[[points]]
key = "baseline"

[[points]]
key = "short-path"
n_hops = 1
cross_utilization = 0.1

[[points]]
key = "vit"
policy = "vit:1e-4"

[run]
mode = "analytic"
sample_sizes = [200]
trials = 4
seed = 7
"""


class TestScenarioPoints:
    def test_points_compile_to_explicit_grid_points(self):
        spec = ScenarioSpec.from_dict(points_spec_dict())
        cells = ScenarioExperiment(spec).cells()
        assert [cell.key for cell in cells] == [
            "named_points/baseline",
            "named_points/short-path",
            "named_points/vit",
        ]
        by_key = {cell.key: cell.scenario for cell in cells}
        assert by_key["named_points/baseline"].n_hops == 5
        assert by_key["named_points/short-path"].n_hops == 1
        assert by_key["named_points/short-path"].cross_utilization == 0.1
        assert by_key["named_points/vit"].policy.kind == "VIT"
        # Un-overridden fields come from [base].
        assert by_key["named_points/vit"].n_hops == 5

    def test_dict_round_trip_preserves_cells_and_fingerprints(self):
        spec = ScenarioSpec.from_dict(points_spec_dict())
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert [
            (c.key, c.fingerprint()) for c in ScenarioExperiment(spec).cells()
        ] == [(c.key, c.fingerprint()) for c in ScenarioExperiment(rebuilt).cells()]

    def test_override_order_is_canonical(self):
        a = ScenarioPoint(key="p", overrides={"n_hops": 1, "cross_utilization": 0.1})
        b = ScenarioPoint(key="p", overrides={"cross_utilization": 0.1, "n_hops": 1})
        assert a == b

    def test_points_and_grid_are_mutually_exclusive(self):
        document = points_spec_dict()
        document["grid"] = {"hops": [1, 5]}
        with pytest.raises(ConfigurationError, match="not both"):
            ScenarioSpec.from_dict(document)

    def test_duplicate_point_keys_rejected(self):
        document = points_spec_dict()
        document["points"] = [{"key": "same"}, {"key": "same", "n_hops": 1}]
        with pytest.raises(ConfigurationError, match="unique"):
            ScenarioSpec.from_dict(document)

    def test_unknown_override_field_rejected(self):
        document = points_spec_dict()
        document["points"] = [{"key": "p", "bandwidth": 1}]
        with pytest.raises(ConfigurationError, match="unknown keys"):
            ScenarioSpec.from_dict(document)

    def test_key_is_required_and_key_safe(self):
        document = points_spec_dict()
        document["points"] = [{"n_hops": 1}]
        with pytest.raises(ConfigurationError, match="key"):
            ScenarioSpec.from_dict(document)
        document["points"] = [{"key": "bad/key"}]
        with pytest.raises(ConfigurationError, match="key"):
            ScenarioSpec.from_dict(document)

    def test_empty_points_rejected(self):
        document = points_spec_dict()
        document["points"] = []
        with pytest.raises(ConfigurationError, match="at least one"):
            ScenarioSpec.from_dict(document)

    @needs_toml
    def test_toml_points_match_the_dict_form(self, tmp_path):
        path = tmp_path / "points.toml"
        path.write_text(POINTS_TOML)
        from_file = ScenarioSpec.from_toml(path)
        from_dict = ScenarioSpec.from_dict(points_spec_dict())
        assert [
            (c.key, c.fingerprint()) for c in ScenarioExperiment(from_file).cells()
        ] == [(c.key, c.fingerprint()) for c in ScenarioExperiment(from_dict).cells()]

    def test_runs_end_to_end(self):
        spec = ScenarioSpec.from_dict(points_spec_dict())
        outcome = run_experiment(ScenarioExperiment(spec))
        text = outcome.to_text()
        assert "baseline" in text and "short-path" in text and "vit" in text


class TestTomlLoading:
    pytestmark = needs_toml

    @pytest.fixture
    def toml_path(self, tmp_path):
        path = tmp_path / "wan.toml"
        path.write_text(WAN_TOML)
        return path

    def test_toml_matches_the_dict_form(self, toml_path):
        from_file = ScenarioSpec.from_toml(toml_path)
        from_dict = ScenarioSpec.from_dict(wan_spec_dict())
        assert [
            (c.key, c.fingerprint()) for c in ScenarioExperiment(from_file).cells()
        ] == [(c.key, c.fingerprint()) for c in ScenarioExperiment(from_dict).cells()]

    def test_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            ScenarioSpec.from_toml(tmp_path / "nope.toml")

    def test_invalid_toml_fails_loudly(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ConfigurationError, match="not valid TOML"):
            ScenarioSpec.from_toml(path)

    def test_committed_example_scenarios_parse(self):
        """Every gallery file under examples/scenarios/ loads and expands."""
        from pathlib import Path

        gallery = (
            Path(__file__).resolve().parent.parent.parent / "examples" / "scenarios"
        )
        files = sorted(gallery.glob("*.toml"))
        assert len(files) >= 3  # wan_smoke + the PR 10 additions
        names = set()
        for example in files:
            spec = ScenarioSpec.from_toml(example)
            assert ScenarioExperiment(spec).cells()
            names.add(spec.name)
        assert "population_smoke" in names  # the population gallery entry


class TestScenarioExperiment:
    def test_satisfies_the_experiment_protocol(self):
        experiment = ScenarioExperiment(ScenarioSpec.from_dict(wan_spec_dict()))
        assert isinstance(experiment, Experiment)
        assert experiment.name == "test_wan"
        assert "WAN" in experiment.describe()

    def test_runs_end_to_end_through_the_sweep_runner(self, tmp_path):
        """The acceptance bar: a new scenario, no Python, cold then warm."""
        spec = ScenarioSpec.from_dict(wan_spec_dict())
        experiment = ScenarioExperiment(spec)

        store = ResultsStore(tmp_path)
        cold = run_experiment(experiment, runner=SweepRunner(jobs=2, store=store))
        assert cold.report.misses == 4 and cold.report.hits == 0

        warm = run_experiment(experiment, runner=SweepRunner(store=store))
        assert warm.report.misses == 0 and warm.report.hits == 4
        assert warm.to_text() == cold.to_text()

        text = cold.to_text()
        assert "CIT across a loaded WAN path" in text
        assert "hops=5/utilization=0.3" in text
        assert "theorem" in text

    def test_multi_seed_aggregation(self):
        spec = ScenarioSpec.from_dict(wan_spec_dict())
        outcome = run_experiment(
            ScenarioExperiment(spec), seeds=(99, 100, 101), confidence=0.9
        )
        text = outcome.to_text()
        assert "mean of 3 seeds" in text
        assert "ci90%" in text

    def test_assemble_reads_only_its_own_cells(self):
        """A pooled report with foreign cells assembles the scenario cleanly."""
        spec = ScenarioSpec.from_dict(wan_spec_dict())
        experiment = ScenarioExperiment(spec)
        report = SweepRunner().run(experiment.cells())
        report.results["foreign/cell"] = next(iter(report.results.values()))
        result = experiment.assemble(report)
        assert "foreign" not in result.to_text()
