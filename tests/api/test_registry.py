"""Registry contract tests: every registered experiment obeys the protocol."""

from __future__ import annotations

import pytest

from repro.api import (
    PRESETS,
    Experiment,
    ExperimentDefinition,
    apply_overrides,
    describe_experiment,
    experiment_definition,
    get_experiment,
    list_experiments,
    parse_set_options,
    register_experiment,
    run_experiment,
)
from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, Fig4Config
from repro.runner import CellResult, SweepCell

ALL_EXPERIMENTS = list_experiments()

EXPECTED_NAMES = {
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "ablation_estimators",
    "ablation_tap",
    "ablation_vit",
    "population",
}


def synthetic_report(cells):
    """A fake sweep report: plausible numbers shaped by each cell's config."""
    report = {}
    for cell in cells:
        rates = {
            feature: {n: 0.75 for n in cell.sample_sizes} for feature in cell.features
        }
        piat = {
            label: {
                "mean": 0.01,
                "std": 1e-3,
                "qq_rms_deviation": 0.05,
                "looks_normal": True,
            }
            for label in ("low", "high")
        }
        report[cell.key] = CellResult(
            key=cell.key,
            fingerprint=cell.fingerprint(),
            empirical_detection_rate=rates,
            measured_variance_ratio=1.2,
            measured_means={"low": 0.01, "high": 0.01},
            piat_stats=piat if cell.collect_piat_stats else {},
        )
    return report


class TestRegistryContents:
    def test_figures_and_ablations_are_registered(self):
        assert EXPECTED_NAMES <= set(ALL_EXPERIMENTS)

    def test_listing_is_sorted_and_unique(self):
        assert ALL_EXPERIMENTS == sorted(ALL_EXPERIMENTS)
        assert len(set(ALL_EXPERIMENTS)) == len(ALL_EXPERIMENTS)

    def test_unknown_name_error_lists_the_known_names(self):
        with pytest.raises(ConfigurationError, match="fig6"):
            get_experiment("fig9")

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(ConfigurationError, match="preset"):
            get_experiment("fig6", preset="warp")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_experiment("fig4")
            class Duplicate(ExperimentDefinition):
                """Never registered."""

                config_cls = Fig4Config

    def test_descriptions_are_one_liners(self):
        for name in ALL_EXPERIMENTS:
            summary = describe_experiment(name)
            assert summary and "\n" not in summary


class TestExperimentContract:
    """The formal protocol, checked for every registered experiment."""

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_satisfies_the_protocol(self, name):
        experiment = get_experiment(name, preset="smoke")
        assert isinstance(experiment, Experiment)
        assert experiment.name == name
        assert experiment.describe()

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    @pytest.mark.parametrize("preset", PRESETS)
    def test_every_preset_builds_cells(self, name, preset):
        cells = get_experiment(name, preset=preset).cells()
        assert cells and all(isinstance(cell, SweepCell) for cell in cells)

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_cell_keys_carry_the_experiment_name(self, name):
        for cell in get_experiment(name, preset="smoke").cells():
            assert cell.key == name or cell.key.startswith(f"{name}/")

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_cells_are_fingerprint_stable_across_two_builds(self, name):
        first = get_experiment(name, preset="smoke").cells()
        second = get_experiment(name, preset="smoke").cells()
        assert [cell.key for cell in first] == [cell.key for cell in second]
        assert [cell.fingerprint() for cell in first] == [
            cell.fingerprint() for cell in second
        ]

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_assemble_round_trips_a_synthetic_report(self, name):
        experiment = get_experiment(name, preset="smoke")
        result = experiment.assemble(synthetic_report(experiment.cells()))
        text = result.to_text()
        assert text.strip()
        assert "0.75" in text

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_assemble_aggregates_a_multi_seed_synthetic_report(self, name):
        experiment = get_experiment(name, preset="smoke")
        seeds = (11, 12)
        cells = experiment.cells(seeds)
        assert len(cells) == 2 * len(experiment.cells())
        result = experiment.assemble(
            synthetic_report(cells), seeds=seeds, confidence=0.9
        )
        assert "mean of 2 seeds" in result.to_text()


class TestOverrides:
    def test_override_replaces_a_config_field(self):
        experiment = get_experiment("fig6", preset="smoke", overrides={"trials": 9})
        assert experiment.config.trials == 9

    def test_string_overrides_are_coerced_by_field_type(self):
        experiment = get_experiment(
            "fig6",
            preset="smoke",
            overrides={
                "trials": "9",
                "utilizations": "0.1,0.3",
                "mode": "analytic",
            },
        )
        assert experiment.config.trials == 9
        assert experiment.config.utilizations == (0.1, 0.3)
        assert experiment.config.mode is CollectionMode.ANALYTIC

    def test_mixed_type_tuple_overrides_keep_rules_and_numbers(self):
        # kde_bandwidths holds rule names *and* float multipliers; a --set
        # string must be able to express both.
        experiment = get_experiment(
            "ablation_estimators",
            preset="smoke",
            overrides={"kde_bandwidths": "silverman,0.5,2.0"},
        )
        assert experiment.config.kde_bandwidths == ("silverman", 0.5, 2.0)

    def test_unknown_field_names_the_valid_ones(self):
        with pytest.raises(ConfigurationError, match="utilizations"):
            get_experiment("fig6", preset="smoke", overrides={"utilisation": 0.2})

    def test_bad_value_fails_with_the_config_error(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig6", preset="smoke", overrides={"trials": "many"})

    def test_invalid_configurations_still_fail_loudly(self):
        # Overrides feed dataclasses.replace, so __post_init__ re-validates.
        with pytest.raises(ConfigurationError, match="trials"):
            get_experiment("fig6", preset="smoke", overrides={"trials": 1})

    def test_apply_overrides_requires_a_dataclass(self):
        with pytest.raises(ConfigurationError):
            apply_overrides(object(), {"trials": 2})

    def test_parse_set_options(self):
        assert parse_set_options(["a=1", "b=x=y"]) == {"a": "1", "b": "x=y"}
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_set_options(["oops"])
        with pytest.raises(ConfigurationError, match="twice"):
            parse_set_options(["a=1", "a=2"])


class TestRunExperiment:
    def test_wraps_result_with_provenance(self):
        experiment = get_experiment("fig6", preset="smoke", overrides={"trials": 4})
        outcome = run_experiment(
            experiment, preset="smoke", overrides={"trials": 4}
        )
        assert outcome.name == "fig6"
        assert outcome.to_text() == outcome.result.to_text()
        assert set(outcome.fingerprints) == {cell.key for cell in experiment.cells()}
        assert set(outcome.cell_results) == set(outcome.fingerprints)
        provenance = outcome.provenance()
        assert provenance["preset"] == "smoke"
        assert provenance["overrides"] == {"trials": 4}
        assert provenance["seeds"] == [experiment.config.seed]

    def test_definition_lookup_exposes_config_cls(self):
        definition = experiment_definition("fig4")
        assert definition.config_cls is Fig4Config
        assert definition.name == "fig4"
