"""Tests for links and elementary sinks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network import CountingSink, Demux, Link, NullSink
from repro.traffic import Packet, PacketKind


class TestLink:
    def test_propagation_delay_applied(self, simulator):
        sink = CountingSink()
        link = Link(simulator, sink, propagation_delay=0.005)
        simulator.schedule(1.0, lambda: link.send(Packet(created_at=1.0)))
        simulator.run()
        assert sink.total == 1
        assert simulator.now == pytest.approx(1.005)

    def test_zero_delay_delivers_immediately(self, simulator):
        sink = CountingSink()
        link = Link(simulator, sink)
        link.send(Packet(created_at=0.0))
        assert sink.total == 1

    def test_capacity_serialises_back_to_back_packets(self, simulator):
        sink = CountingSink()
        # 512-byte packets on a 1 Mbit/s link: 4.096 ms each.
        link = Link(simulator, sink, rate_bps=1e6)
        arrivals = []
        sink_wrapper = lambda p: arrivals.append(simulator.now) or None  # noqa: E731
        link.sink = lambda p: (arrivals.append(simulator.now), sink(p))
        link.send(Packet(created_at=0.0))
        link.send(Packet(created_at=0.0))
        simulator.run()
        assert arrivals[0] == pytest.approx(0.004096)
        assert arrivals[1] == pytest.approx(0.008192)
        del sink_wrapper

    def test_counts_carried_packets(self, simulator):
        link = Link(simulator, NullSink())
        for _ in range(5):
            link(Packet(created_at=0.0))
        assert link.packets_carried == 5

    def test_validation(self, simulator):
        with pytest.raises(NetworkError):
            Link(simulator, "nope")
        with pytest.raises(NetworkError):
            Link(simulator, NullSink(), propagation_delay=-1.0)
        with pytest.raises(NetworkError):
            Link(simulator, NullSink(), rate_bps=0.0)


class TestSinks:
    def test_null_sink_counts(self):
        sink = NullSink()
        sink(Packet(created_at=0.0))
        sink(Packet(created_at=0.0))
        assert sink.packets_discarded == 2

    def test_counting_sink_per_kind_counts(self):
        sink = CountingSink()
        sink(Packet(created_at=0.0, kind=PacketKind.PAYLOAD))
        sink(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        sink(Packet(created_at=0.0, kind=PacketKind.CROSS))
        sink(Packet(created_at=0.0, kind=PacketKind.CROSS))
        assert sink.counts[PacketKind.PAYLOAD] == 1
        assert sink.counts[PacketKind.DUMMY] == 1
        assert sink.counts[PacketKind.CROSS] == 2
        assert sink.total == 4

    def test_counting_sink_without_storage(self):
        sink = CountingSink(keep_packets=False)
        sink(Packet(created_at=0.0))
        assert sink.total == 1
        assert sink.packets == []

    def test_arrival_times(self):
        sink = CountingSink()
        sink(Packet(created_at=0.5))
        sink(Packet(created_at=1.5))
        assert np.allclose(sink.arrival_times(), [0.5, 1.5])


class TestDemux:
    def test_routes_by_kind(self):
        padded = CountingSink()
        cross = CountingSink()
        demux = Demux(padded_sink=padded, cross_sink=cross)
        demux(Packet(created_at=0.0, kind=PacketKind.PAYLOAD))
        demux(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        demux(Packet(created_at=0.0, kind=PacketKind.CROSS))
        assert padded.total == 2
        assert cross.total == 1
        assert demux.padded_packets == 2
        assert demux.cross_packets == 1

    def test_default_cross_sink_is_null(self):
        demux = Demux(padded_sink=CountingSink())
        demux(Packet(created_at=0.0, kind=PacketKind.CROSS))
        assert demux.cross_sink.packets_discarded == 1

    def test_validation(self):
        with pytest.raises(NetworkError):
            Demux(padded_sink="nope")
        with pytest.raises(NetworkError):
            Demux(padded_sink=CountingSink(), cross_sink="nope")
