"""Tests for cross-traffic generation."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network import (
    CountingSink,
    CrossTrafficGenerator,
    attach_diurnal_cross_traffic,
    cross_traffic_rate_for_utilization,
)
from repro.traffic import PacketKind
from repro.units import HOUR, serialization_delay


class TestRateForUtilization:
    def test_accounts_for_padded_stream(self):
        link_rate = 50e6
        padded = 100.0
        rate = cross_traffic_rate_for_utilization(0.4, link_rate, 512, padded_rate_pps=padded)
        total = rate + padded
        assert total * float(serialization_delay(512, link_rate)) == pytest.approx(0.4)

    def test_zero_padded_stream(self):
        rate = cross_traffic_rate_for_utilization(0.2, 10e6, 512)
        assert rate * float(serialization_delay(512, 10e6)) == pytest.approx(0.2)

    def test_padded_exceeding_target_rejected(self):
        with pytest.raises(NetworkError):
            cross_traffic_rate_for_utilization(0.0001, 50e6, 512, padded_rate_pps=100.0)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(NetworkError):
            cross_traffic_rate_for_utilization(1.0, 10e6, 512)
        with pytest.raises(NetworkError):
            cross_traffic_rate_for_utilization(-0.1, 10e6, 512)


class TestCrossTrafficGenerator:
    def test_packets_are_cross_kind(self, simulator, rng):
        sink = CountingSink()
        generator = CrossTrafficGenerator(simulator, sink, rate=500.0, rng=rng)
        generator.start()
        simulator.run(until=2.0)
        generator.stop()
        assert sink.total > 0
        assert all(p.kind is PacketKind.CROSS for p in sink.packets)
        assert generator.packets_emitted == sink.total

    def test_rate_matches_target(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        generator = CrossTrafficGenerator(simulator, sink, rate=1000.0, rng=rng)
        generator.start()
        simulator.run(until=20.0)
        assert sink.total / 20.0 == pytest.approx(1000.0, rel=0.05)

    def test_cbr_process(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        generator = CrossTrafficGenerator(simulator, sink, rate=100.0, rng=rng, process="cbr")
        generator.start()
        simulator.run(until=5.0)
        assert sink.total == pytest.approx(500, abs=2)

    def test_unknown_process_rejected(self, simulator, rng):
        with pytest.raises(NetworkError):
            CrossTrafficGenerator(simulator, CountingSink(), rate=10.0, rng=rng, process="pareto")


class TestDiurnalCrossTraffic:
    # The default profile peaks mid-afternoon, which would require simulating
    # ~14 hours of traffic.  Tests use a compressed profile with a flat trough
    # in hours 0-1 and a flat peak in hours 2-3 so the whole check fits in a
    # few simulated hours at a low packet rate.
    COMPRESSED_PROFILE = [0.1, 0.1, 1.0, 1.0] + [0.1] * 20

    def test_quiet_vs_busy_hour_difference(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        generator = attach_diurnal_cross_traffic(
            simulator,
            sink,
            peak_utilization=0.25,
            link_rate_bps=1e6,
            rng=rng,
            hourly_multipliers=self.COMPRESSED_PROFILE,
        )
        generator.start()
        # Quiet hour: 00:00-01:00 (multiplier 0.1 throughout)
        simulator.run(until=1.0 * HOUR)
        quiet_packets = sink.total
        # Busy hour: 02:00-03:00 (multiplier 1.0 throughout)
        simulator.run(until=2.0 * HOUR)
        before_busy = sink.total
        simulator.run(until=3.0 * HOUR)
        busy_packets = sink.total - before_busy
        generator.stop()
        assert busy_packets > 3 * quiet_packets

    def test_peak_utilization_not_exceeded_substantially(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        generator = attach_diurnal_cross_traffic(
            simulator,
            sink,
            peak_utilization=0.2,
            link_rate_bps=1e6,
            rng=rng,
            hourly_multipliers=self.COMPRESSED_PROFILE,
        )
        generator.start()
        simulator.run(until=2.0 * HOUR)
        before = sink.total
        simulator.run(until=3.0 * HOUR)
        peak_rate = (sink.total - before) / HOUR
        generator.stop()
        implied_utilization = peak_rate * float(serialization_delay(512, 1e6))
        assert implied_utilization < 0.25
        assert implied_utilization > 0.1

    def test_validation(self, simulator, rng):
        with pytest.raises(NetworkError):
            attach_diurnal_cross_traffic(simulator, CountingSink(), 1.5, 50e6, rng=rng)
        with pytest.raises(NetworkError):
            attach_diurnal_cross_traffic(
                simulator,
                CountingSink(),
                0.3,
                50e6,
                rng=rng,
                hourly_multipliers=[0.0] * 24,
            )
