"""Tests for topology presets and the networkx view."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import NetworkError
from repro.network import (
    CountingSink,
    build_path,
    campus_topology,
    lab_topology,
    topology_graph,
    wan_topology,
)
from repro.network.topology import TopologySpec
from repro.sim import RandomStreams
from repro.traffic import Packet, PacketKind


class TestPresets:
    def test_lab_is_single_hop(self):
        spec = lab_topology(cross_utilization=0.3)
        assert spec.n_hops == 1
        assert spec.cross_utilization == 0.3
        assert spec.diurnal_peak_utilization is None

    def test_campus_and_wan_hop_counts(self):
        assert campus_topology().n_hops == 3
        assert wan_topology().n_hops == 15
        assert wan_topology().diurnal_peak_utilization > campus_topology().diurnal_peak_utilization

    def test_hop_service_time(self):
        spec = lab_topology()
        assert spec.hop_service_time == pytest.approx(512 * 8 / spec.link_rate_bps)

    def test_cross_rate_accounts_for_padded_stream(self):
        spec = lab_topology(cross_utilization=0.4)
        total_rate = spec.cross_rate_pps() + spec.padded_rate_pps
        assert total_rate * spec.hop_service_time == pytest.approx(0.4)

    def test_zero_utilization_has_zero_cross_rate(self):
        assert lab_topology(cross_utilization=0.0).cross_rate_pps() == 0.0

    def test_spec_validation(self):
        with pytest.raises(NetworkError):
            TopologySpec(name="bad", n_hops=-1)
        with pytest.raises(NetworkError):
            TopologySpec(name="bad", n_hops=1, link_rate_bps=0.0)
        with pytest.raises(NetworkError):
            TopologySpec(name="bad", n_hops=1, cross_utilization=1.0)
        with pytest.raises(NetworkError):
            TopologySpec(name="bad", n_hops=1, diurnal_peak_utilization=1.5)


class TestBuildPath:
    def test_lab_build_attaches_one_cross_generator(self, simulator):
        spec = lab_topology(cross_utilization=0.2)
        path = build_path(spec, simulator, CountingSink(), RandomStreams(seed=1))
        assert path.n_hops == 1
        assert len(path.cross_generators) == 1

    def test_zero_load_lab_has_no_cross_generators(self, simulator):
        path = build_path(lab_topology(0.0), simulator, CountingSink(), RandomStreams(seed=1))
        assert path.cross_generators == []

    def test_wan_build_attaches_generator_per_hop(self, simulator):
        spec = wan_topology()
        path = build_path(spec, simulator, CountingSink(), RandomStreams(seed=1))
        assert len(path.cross_generators) == spec.n_hops

    def test_built_path_carries_padded_traffic_end_to_end(self, simulator):
        exit_sink = CountingSink()
        spec = campus_topology()
        path = build_path(spec, simulator, exit_sink, RandomStreams(seed=2))
        path.start_cross_traffic()
        for i in range(100):
            at = 0.01 * (i + 1)
            simulator.schedule_at(at, path.entry, Packet(created_at=at, kind=PacketKind.DUMMY))
        simulator.run(until=2.0)
        path.stop_cross_traffic()
        assert exit_sink.total == 100

    def test_builds_are_reproducible_given_seed(self, simulator):
        spec = lab_topology(cross_utilization=0.3)
        sink_a, sink_b = CountingSink(keep_packets=False), CountingSink(keep_packets=False)
        # Two identical builds driven from identically seeded stream registries
        # inject the same number of cross packets over the same horizon.
        counts = []
        for sink in (sink_a, sink_b):
            from repro.sim import Simulator

            sim = Simulator()
            path = build_path(spec, sim, sink, RandomStreams(seed=77))
            path.start_cross_traffic()
            sim.run(until=5.0)
            counts.append(path.cross_generators[0].packets_emitted)
        assert counts[0] == counts[1]


class TestTopologyGraph:
    def test_nodes_and_roles(self):
        graph = topology_graph(campus_topology())
        roles = nx.get_node_attributes(graph, "role")
        assert roles["GW1"] == "sender-gateway"
        assert roles["GW2"] == "receiver-gateway"
        assert sum(1 for r in roles.values() if r == "router") == 3
        assert sum(1 for r in roles.values() if r == "cross-source") == 3

    def test_unloaded_lab_graph_has_no_cross_nodes(self):
        graph = topology_graph(lab_topology(0.0))
        roles = nx.get_node_attributes(graph, "role")
        assert all(r != "cross-source" for r in roles.values())

    def test_padded_stream_path_length(self):
        spec = wan_topology()
        graph = topology_graph(spec)
        path = nx.shortest_path(graph, "subnet-A", "subnet-B")
        # subnet-A, GW1, 15 routers, GW2, subnet-B
        assert len(path) == spec.n_hops + 4

    def test_edges_carry_link_rate(self):
        graph = topology_graph(lab_topology())
        assert all("link_rate_bps" in data for _, _, data in graph.edges(data=True))

    def test_graph_is_connected(self):
        for spec in (lab_topology(0.0), campus_topology(), wan_topology()):
            assert nx.is_weakly_connected(topology_graph(spec))

    def test_zero_hop_path_connects_the_gateways_directly(self):
        graph = topology_graph(TopologySpec(name="direct", n_hops=0))
        assert nx.shortest_path(graph, "subnet-A", "subnet-B") == [
            "subnet-A", "GW1", "GW2", "subnet-B",
        ]

    def test_view_is_deterministic(self):
        spec = campus_topology()
        a, b = topology_graph(spec), topology_graph(spec)
        assert sorted(a.nodes) == sorted(b.nodes)
        assert sorted(a.edges) == sorted(b.edges)
