"""Tests for analytic queueing-delay models (sigma_net prediction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError
from repro.network import (
    md1_waiting_time_moments,
    mg1_waiting_time_moments,
    mm1_waiting_time_moments,
    path_piat_variance,
    piat_variance_from_waiting,
)
from repro.network.delay_models import equivalent_sigma_net


class TestWaitingTimeMoments:
    def test_zero_utilization_means_zero_wait(self):
        assert md1_waiting_time_moments(0.0, 1e-4) == (0.0, 0.0)
        assert mm1_waiting_time_moments(0.0, 1e-4) == (0.0, 0.0)

    def test_md1_mean_matches_textbook_formula(self):
        rho, s = 0.5, 1e-4
        mean, _ = md1_waiting_time_moments(rho, s)
        assert mean == pytest.approx(rho * s / (2 * (1 - rho)))

    def test_mm1_mean_matches_textbook_formula(self):
        rho, s = 0.5, 1e-4
        mean, _ = mm1_waiting_time_moments(rho, s)
        assert mean == pytest.approx(rho * s / (1 - rho))

    def test_mm1_waits_exceed_md1_waits(self):
        for rho in (0.1, 0.3, 0.6, 0.9):
            md1_mean, md1_var = md1_waiting_time_moments(rho, 1e-4)
            mm1_mean, mm1_var = mm1_waiting_time_moments(rho, 1e-4)
            assert mm1_mean > md1_mean
            assert mm1_var > md1_var

    def test_moments_increase_with_utilization(self):
        service = 8.2e-5
        means, variances = zip(
            *[md1_waiting_time_moments(rho, service) for rho in (0.05, 0.1, 0.2, 0.4, 0.8)]
        )
        assert all(b > a for a, b in zip(means, means[1:]))
        assert all(b > a for a, b in zip(variances, variances[1:]))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            md1_waiting_time_moments(1.0, 1e-4)
        with pytest.raises(AnalysisError):
            md1_waiting_time_moments(-0.1, 1e-4)
        with pytest.raises(AnalysisError):
            md1_waiting_time_moments(0.5, 0.0)
        with pytest.raises(AnalysisError):
            mg1_waiting_time_moments(0.5, 1e-4, -1.0, 1e-12)
        with pytest.raises(AnalysisError):
            mg1_waiting_time_moments(0.5, 1e-4, 0.0, -1.0)

    @given(rho=st.floats(min_value=0.01, max_value=0.95))
    @settings(max_examples=100, deadline=None)
    def test_variance_is_non_negative(self, rho):
        _, var_md1 = md1_waiting_time_moments(rho, 1e-4)
        _, var_mm1 = mm1_waiting_time_moments(rho, 1e-4)
        assert var_md1 >= 0.0
        assert var_mm1 >= 0.0

    def test_mm1_against_monte_carlo(self, rng):
        """Cross-check the P-K variance with a direct M/M/1 queue simulation."""
        rho, service_mean = 0.5, 1e-3
        lam = rho / service_mean
        n = 200_000
        arrivals = np.cumsum(rng.exponential(1.0 / lam, size=n))
        services = rng.exponential(service_mean, size=n)
        waits = np.empty(n)
        waits[0] = 0.0
        departure = arrivals[0] + services[0]
        for i in range(1, n):
            waits[i] = max(departure - arrivals[i], 0.0)
            departure = arrivals[i] + waits[i] + services[i]
        mean, variance = mm1_waiting_time_moments(rho, service_mean)
        assert np.mean(waits) == pytest.approx(mean, rel=0.1)
        assert np.var(waits) == pytest.approx(variance, rel=0.15)


class TestPathVariance:
    def test_piat_variance_is_twice_waiting_variance(self):
        assert piat_variance_from_waiting(3.0) == 6.0
        with pytest.raises(AnalysisError):
            piat_variance_from_waiting(-1.0)

    def test_path_variance_sums_over_hops(self):
        single = path_piat_variance([0.3], [1e-4])
        triple = path_piat_variance([0.3, 0.3, 0.3], [1e-4, 1e-4, 1e-4])
        assert triple == pytest.approx(3 * single)

    def test_model_selection(self):
        md1 = path_piat_variance([0.5], [1e-4], model="md1")
        mm1 = path_piat_variance([0.5], [1e-4], model="mm1")
        assert mm1 > md1
        with pytest.raises(AnalysisError):
            path_piat_variance([0.5], [1e-4], model="gg1")

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            path_piat_variance([0.5, 0.5], [1e-4])

    def test_equivalent_sigma_net_is_sqrt(self):
        variance = path_piat_variance([0.2, 0.3], [1e-4, 1e-4])
        assert equivalent_sigma_net([0.2, 0.3], [1e-4, 1e-4]) == pytest.approx(np.sqrt(variance))

    def test_more_hops_monotonically_increase_sigma_net(self):
        sigmas = [
            equivalent_sigma_net([0.2] * hops, [1e-4] * hops) for hops in (1, 3, 8, 15)
        ]
        assert all(b > a for a, b in zip(sigmas, sigmas[1:]))
