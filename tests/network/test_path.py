"""Tests for the end-to-end unprotected path."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network import CountingSink, UnprotectedPath
from repro.traffic import Packet, PacketKind


def inject_periodic_padded_stream(simulator, entry, n_packets=500, interval=0.01, start=0.0):
    for i in range(n_packets):
        at = start + interval * (i + 1)
        simulator.schedule_at(at, entry, Packet(created_at=at, kind=PacketKind.DUMMY))


class TestConstruction:
    def test_single_hop_delivers_everything(self, simulator):
        exit_sink = CountingSink()
        path = UnprotectedPath(simulator, exit_sink, n_hops=1)
        inject_periodic_padded_stream(simulator, path.entry, n_packets=100)
        simulator.run()
        assert exit_sink.total == 100
        assert path.padded_packets_delivered() == 100
        assert path.total_drops() == 0

    def test_zero_hop_path_is_a_passthrough(self, simulator):
        exit_sink = CountingSink()
        path = UnprotectedPath(simulator, exit_sink, n_hops=0)
        path.entry(Packet(created_at=0.0))
        assert exit_sink.total == 1
        with pytest.raises(NetworkError):
            path.add_observer(0, lambda p: None)
        with pytest.raises(NetworkError):
            path.padded_packets_delivered()

    def test_multi_hop_propagation_delay_accumulates(self, simulator):
        exit_sink = CountingSink()
        n_hops = 5
        path = UnprotectedPath(
            simulator, exit_sink, n_hops=n_hops, propagation_delay=1e-3, link_rate_bps=1e9
        )
        path.entry(Packet(created_at=0.0, size_bytes=512))
        simulator.run()
        assert exit_sink.total == 1
        # Each hop: serialization (~4.1 us at 1 Gbit/s) + 1 ms propagation.
        assert simulator.now == pytest.approx(n_hops * 1e-3, rel=0.05)

    def test_per_hop_link_rates(self, simulator):
        path = UnprotectedPath(
            simulator, CountingSink(), n_hops=2, link_rate_bps=[10e6, 100e6]
        )
        assert path.routers[0].output_rate_bps == 10e6
        assert path.routers[1].output_rate_bps == 100e6

    def test_validation(self, simulator):
        with pytest.raises(NetworkError):
            UnprotectedPath(simulator, CountingSink(), n_hops=-1)
        with pytest.raises(NetworkError):
            UnprotectedPath(simulator, "nope", n_hops=1)
        with pytest.raises(NetworkError):
            UnprotectedPath(simulator, CountingSink(), n_hops=2, link_rate_bps=[10e6])


class TestObservers:
    def test_observer_sees_every_padded_packet(self, simulator):
        exit_sink = CountingSink()
        path = UnprotectedPath(simulator, exit_sink, n_hops=2)
        seen = []
        path.add_observer(1, lambda p: seen.append(p.packet_id))
        inject_periodic_padded_stream(simulator, path.entry, n_packets=50)
        simulator.run()
        assert len(seen) == 50
        assert exit_sink.total == 50

    def test_observer_at_intermediate_hop(self, simulator):
        exit_sink = CountingSink()
        path = UnprotectedPath(simulator, exit_sink, n_hops=3)
        hop0, hop2 = [], []
        path.add_observer(0, lambda p: hop0.append(simulator.now))
        path.add_observer(2, lambda p: hop2.append(simulator.now))
        inject_periodic_padded_stream(simulator, path.entry, n_packets=20)
        simulator.run()
        assert len(hop0) == len(hop2) == 20
        # Downstream observations happen strictly later than upstream ones.
        assert all(b > a for a, b in zip(hop0, hop2))

    def test_invalid_observer_registration(self, simulator):
        path = UnprotectedPath(simulator, CountingSink(), n_hops=2)
        with pytest.raises(NetworkError):
            path.add_observer(2, lambda p: None)
        with pytest.raises(NetworkError):
            path.add_observer(0, "nope")


class TestCrossTrafficIntegration:
    def test_cross_traffic_never_reaches_exit(self, simulator, streams):
        exit_sink = CountingSink()
        path = UnprotectedPath(simulator, exit_sink, n_hops=2)
        path.attach_cross_traffic(0, 500.0, rng=streams.get("cross0"))
        path.attach_cross_traffic(1, 500.0, rng=streams.get("cross1"))
        path.start_cross_traffic()
        inject_periodic_padded_stream(simulator, path.entry, n_packets=200)
        simulator.run(until=3.0)
        path.stop_cross_traffic()
        assert all(p.kind is not PacketKind.CROSS for p in exit_sink.packets)
        assert exit_sink.total == 200
        # Cross packets were absorbed by the per-hop cross destinations.
        assert sum(s.packets_discarded for s in path.cross_sinks) > 0

    def test_cross_traffic_increases_measured_utilization(self, simulator, streams):
        results = {}
        for label, rate in (("idle", 0.0), ("loaded", 3000.0)):
            exit_sink = CountingSink(keep_packets=False)
            path = UnprotectedPath(simulator, exit_sink, n_hops=1, link_rate_bps=50e6)
            if rate:
                path.attach_cross_traffic(0, rate, rng=streams.get(f"cross-{label}"))
                path.start_cross_traffic()
            start = simulator.now
            inject_periodic_padded_stream(simulator, path.entry, n_packets=500, start=start)
            simulator.run(until=start + 5.5)
            path.stop_cross_traffic()
            results[label] = path.routers[0].measured_utilization(over_time=5.5)
        assert results["loaded"] > results["idle"] + 0.1

    def test_cross_generators_property_and_bad_hop(self, simulator, streams):
        path = UnprotectedPath(simulator, CountingSink(), n_hops=2)
        path.attach_cross_traffic(1, 100.0, rng=streams.get("x"))
        assert len(path.cross_generators) == 1
        with pytest.raises(NetworkError):
            path.attach_cross_traffic(5, 100.0, rng=streams.get("y"))

    def test_hop_utilizations_reported_per_router(self, simulator, streams):
        path = UnprotectedPath(simulator, CountingSink(keep_packets=False), n_hops=2)
        path.attach_cross_traffic(0, 2000.0, rng=streams.get("z"))
        path.start_cross_traffic()
        inject_periodic_padded_stream(simulator, path.entry, n_packets=100)
        simulator.run(until=2.0)
        utilizations = path.hop_utilizations()
        assert len(utilizations) == 2
        assert utilizations[0] > utilizations[1]
