"""Tests for the FIFO output-queued router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network import CountingSink, Router
from repro.traffic import Packet, PacketKind, PoissonSource
from repro.units import serialization_delay


class TestRouterBasics:
    def test_forwards_in_fifo_order(self, simulator):
        sink = CountingSink()
        router = Router(simulator, sink, output_rate_bps=10e6)
        packets = [Packet(created_at=0.0, flow_id=str(i)) for i in range(5)]
        for packet in packets:
            router.receive(packet)
        simulator.run()
        assert [p.flow_id for p in sink.packets] == [str(i) for i in range(5)]
        assert router.packets_forwarded == 5

    def test_service_time_matches_link_rate(self, simulator):
        sink = CountingSink()
        router = Router(simulator, sink, output_rate_bps=10e6)
        router.receive(Packet(created_at=0.0, size_bytes=512))
        simulator.run()
        assert simulator.now == pytest.approx(float(serialization_delay(512, 10e6)))

    def test_processing_delay_added(self, simulator):
        sink = CountingSink()
        router = Router(simulator, sink, output_rate_bps=10e6, processing_delay=0.001)
        router.receive(Packet(created_at=0.0, size_bytes=512))
        simulator.run()
        expected = 0.001 + float(serialization_delay(512, 10e6))
        assert simulator.now == pytest.approx(expected)

    def test_queue_builds_under_overload_and_drops_at_capacity(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        # 1 Mbit/s output, 512-byte packets -> max ~244 pps; offered 2000 pps.
        router = Router(simulator, sink, output_rate_bps=1e6, max_queue_packets=50)
        source = PoissonSource(simulator, router.receive, rate=2000.0, rng=rng)
        source.start()
        simulator.run(until=2.0)
        assert router.packets_dropped > 0
        assert router.queue_depth <= 50
        assert router.counters.get("received") == router.packets_forwarded + router.packets_dropped + router.queue_depth

    def test_per_kind_counters(self, simulator):
        router = Router(simulator, CountingSink())
        router.receive(Packet(created_at=0.0, kind=PacketKind.CROSS))
        router.receive(Packet(created_at=0.0, kind=PacketKind.PAYLOAD))
        router.receive(Packet(created_at=0.0, kind=PacketKind.DUMMY))
        assert router.counters.get("received_cross") == 1
        assert router.counters.get("received_padded") == 2

    def test_validation(self, simulator):
        with pytest.raises(NetworkError):
            Router(simulator, "nope")
        with pytest.raises(NetworkError):
            Router(simulator, CountingSink(), output_rate_bps=0.0)
        with pytest.raises(NetworkError):
            Router(simulator, CountingSink(), max_queue_packets=0)
        with pytest.raises(NetworkError):
            Router(simulator, CountingSink(), processing_delay=-1.0)

    def test_utilization_requires_positive_window(self, simulator):
        router = Router(simulator, CountingSink())
        with pytest.raises(NetworkError):
            router.measured_utilization()


class TestRouterUtilization:
    def test_measured_utilization_tracks_offered_load(self, simulator, rng):
        sink = CountingSink(keep_packets=False)
        router = Router(simulator, sink, output_rate_bps=10e6)
        service = router.service_time_for(512)
        target_utilization = 0.3
        rate = target_utilization / service
        source = PoissonSource(simulator, router.receive, rate=rate, rng=rng)
        source.start()
        simulator.run(until=30.0)
        assert router.measured_utilization() == pytest.approx(target_utilization, rel=0.05)

    def test_queueing_perturbs_interarrival_times(self, simulator, rng):
        """Cross traffic sharing the output port adds PIAT jitter (delta_net)."""
        piat_std = {}
        for cross_rate in (0.0, 3000.0):
            egress = []

            class _EgressRecorder:
                def __init__(self, sim, kept):
                    self.sim = sim
                    self.kept = kept

                def __call__(self, packet):
                    if packet.kind is not PacketKind.CROSS:
                        self.kept.append(self.sim.now)

            router = Router(simulator, _EgressRecorder(simulator, egress), output_rate_bps=50e6)
            start = simulator.now
            # Perfectly periodic padded stream at 100 pps entering the router.
            for i in range(2000):
                at = start + 0.01 * (i + 1)
                simulator.schedule_at(
                    at, router.receive, Packet(created_at=at, kind=PacketKind.DUMMY)
                )
            cross_source = None
            if cross_rate:
                cross_source = PoissonSource(
                    simulator, router.receive, rate=cross_rate, rng=rng, kind=PacketKind.CROSS
                )
                cross_source.start()
            simulator.run(until=start + 21.0)
            if cross_source:
                cross_source.stop()
            piat_std[cross_rate] = float(np.std(np.diff(egress)))
        # Without cross traffic the padded stream stays essentially periodic;
        # a ~25% utilization cross load adds clearly measurable jitter.
        assert piat_std[0.0] < 1e-6
        assert piat_std[3000.0] > 5 * piat_std[0.0]
        assert piat_std[3000.0] > 1e-5
