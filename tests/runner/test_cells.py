"""Tests for sweep cells: validation, fingerprints, execution, JSON round trip."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.runner import CellResult, SweepCell, run_cell


def make_cell(**overrides) -> SweepCell:
    params = dict(
        key="cell",
        scenario=ScenarioConfig(),
        sample_sizes=(50,),
        trials=4,
        mode=CollectionMode.ANALYTIC,
        seed=7,
    )
    params.update(overrides)
    return SweepCell(**params)


class TestSweepCellValidation:
    def test_accepts_mode_by_value(self):
        assert make_cell(mode="analytic").mode is CollectionMode.ANALYTIC

    def test_unknown_mode_raises_configuration_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_cell(mode="warp-speed")
        message = str(excinfo.value)
        assert "mode='warp-speed'" in message
        assert "analytic" in message

    def test_coerces_sequences_to_tuples(self):
        cell = make_cell(sample_sizes=[50, 100], features=["variance"])
        assert cell.sample_sizes == (50, 100)
        assert cell.features == ("variance",)

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(key=""), "key"),
            (dict(sample_sizes=()), "sample_sizes"),
            (dict(sample_sizes=(1,)), "sample_sizes"),
            (dict(trials=1), "trials=1"),
            (dict(features=()), "features"),
            (dict(seed_offsets=("same", "same")), "seed_offsets"),
        ],
    )
    def test_rejects_bad_fields_naming_them(self, overrides, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            make_cell(**overrides)
        assert fragment in str(excinfo.value)

    def test_intervals_per_class(self):
        assert make_cell(sample_sizes=(50, 200), trials=5).intervals_per_class == 1000


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert make_cell().fingerprint() == make_cell().fingerprint()

    def test_independent_of_display_key(self):
        assert make_cell(key="a").fingerprint() == make_cell(key="b").fingerprint()

    def test_independent_of_policy_display_name(self):
        """Relabelling a padding policy must not cold the cache."""
        from repro.padding import cit_policy

        renamed = ScenarioConfig(policy=cit_policy(name="CIT-10ms-renamed"))
        assert (
            make_cell(scenario=renamed).fingerprint()
            == make_cell(scenario=ScenarioConfig()).fingerprint()
        )

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(seed=8),
            dict(trials=5),
            dict(sample_sizes=(100,)),
            dict(mode=CollectionMode.SIMULATION),
            dict(scenario=ScenarioConfig(n_hops=1)),
            dict(features=("variance",)),
            dict(seed_offsets=("train-x", "test-x")),
            dict(collect_piat_stats=True),
        ],
    )
    def test_sensitive_to_result_affecting_fields(self, overrides):
        assert make_cell(**overrides).fingerprint() != make_cell().fingerprint()

    def test_config_dict_is_json_plain(self):
        import json

        payload = make_cell().config_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_optional_fields_stay_out_of_legacy_fingerprints(self):
        """Cells that do not use capture/noise_offsets/kde_bandwidth hash
        exactly as before, so stores written before those fields existed
        stay warm."""
        payload = make_cell().config_dict()
        assert "capture" not in payload
        assert "noise_offsets" not in payload
        assert "kde_bandwidth" not in payload

    def test_noise_offsets_require_hybrid_mode(self):
        from repro.experiments import CollectionMode as Mode

        with pytest.raises(ConfigurationError) as excinfo:
            make_cell(noise_offsets=("na", "nb"))  # analytic by default
        assert "hybrid" in str(excinfo.value)
        cell = make_cell(
            mode=Mode.HYBRID, noise_offsets=("na", "nb"),
            scenario=ScenarioConfig(n_hops=1, cross_utilization=0.2),
        )
        assert cell.config_dict()["noise_offsets"] == ["na", "nb"]
        assert cell.fingerprint() != make_cell(
            mode=Mode.HYBRID,
            scenario=ScenarioConfig(n_hops=1, cross_utilization=0.2),
        ).fingerprint()

    def test_kde_bandwidth_is_fingerprinted_when_set(self):
        assert make_cell(kde_bandwidth=2.0).fingerprint() != make_cell().fingerprint()
        assert (
            make_cell(kde_bandwidth="scott").fingerprint()
            != make_cell(kde_bandwidth=2.0).fingerprint()
        )


class TestKdeBandwidthOverride:
    def test_rejects_unknown_rule_and_nonpositive_multiplier(self):
        with pytest.raises(ConfigurationError):
            make_cell(kde_bandwidth="epanechnikov")
        with pytest.raises(ConfigurationError):
            make_cell(kde_bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            make_cell(kde_bandwidth=-1.0)

    def test_override_changes_the_measured_rate_but_stays_valid(self):
        default = run_cell(make_cell(features=("variance",)))
        wide = run_cell(make_cell(features=("variance",), kde_bandwidth=5.0))
        for result in (default, wide):
            for by_n in result.empirical_detection_rate.values():
                assert all(0.0 <= rate <= 1.0 for rate in by_n.values())

    def test_named_rules_run(self):
        result = run_cell(make_cell(features=("variance",), kde_bandwidth="scott"))
        assert 0.0 <= result.empirical_detection_rate["variance"][50] <= 1.0


class TestRunCell:
    def test_produces_rates_for_every_feature_and_size(self):
        cell = make_cell(sample_sizes=(50, 100), collect_piat_stats=True)
        result = run_cell(cell)
        assert set(result.empirical_detection_rate) == {"mean", "variance", "entropy"}
        for by_n in result.empirical_detection_rate.values():
            assert set(by_n) == {50, 100}
            assert all(0.0 <= rate <= 1.0 for rate in by_n.values())
        assert result.measured_variance_ratio > 0.0
        assert set(result.piat_stats) == {"low", "high"}
        assert result.fingerprint == cell.fingerprint()
        assert not result.from_cache

    def test_is_deterministic(self):
        a, b = run_cell(make_cell()), run_cell(make_cell())
        assert a.empirical_detection_rate == b.empirical_detection_rate
        assert a.measured_variance_ratio == b.measured_variance_ratio

    def test_unknown_feature_fails_loudly(self):
        cell = make_cell(features=("variance", "bogus"))
        with pytest.raises(ConfigurationError) as excinfo:
            run_cell(cell)
        assert "bogus" in str(excinfo.value)

    def test_skips_piat_stats_by_default(self):
        assert run_cell(make_cell()).piat_stats == {}


class TestCellResultRoundTrip:
    def test_json_round_trip_is_lossless(self):
        result = run_cell(make_cell(sample_sizes=(50, 100), collect_piat_stats=True))
        restored = CellResult.from_json_dict(
            result.key, result.fingerprint, result.to_json_dict()
        )
        assert restored.empirical_detection_rate == result.empirical_detection_rate
        assert restored.measured_variance_ratio == result.measured_variance_ratio
        assert restored.measured_means == result.measured_means
        assert restored.piat_stats == result.piat_stats
        assert restored.from_cache

    def test_sample_size_keys_survive_as_ints(self):
        result = run_cell(make_cell(sample_sizes=(50,)))
        payload = result.to_json_dict()
        assert list(payload["empirical_detection_rate"]["variance"]) == ["50"]
        restored = CellResult.from_json_dict("k", "fp", payload)
        assert list(restored.empirical_detection_rate["variance"]) == [50]
