"""Tests for two-level shared-capture cells (gateway capture + noise children)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, Fig8Config, Fig8Experiment, ScenarioConfig
from repro.runner import (
    CaptureResult,
    CaptureSpec,
    ResultsStore,
    SweepCell,
    SweepRunner,
    run_capture,
    run_cell,
)


def lab_scenario(utilization: float = 0.2) -> ScenarioConfig:
    return ScenarioConfig(n_hops=3, cross_utilization=utilization)


def two_level_cell(utilization: float = 0.2, **overrides) -> SweepCell:
    scenario = lab_scenario(utilization)
    params = dict(
        key=f"child/util={utilization!r}",
        scenario=scenario,
        sample_sizes=(60,),
        trials=4,
        mode=CollectionMode.HYBRID,
        seed=11,
        seed_offsets=("train-x", "test-x"),
    )
    params.update(overrides)
    capture = CaptureSpec(
        key="parent",
        scenario=params["scenario"],
        n_intervals=max(params["sample_sizes"]) * params["trials"] + 1,
        seed=params["seed"],
        seed_offsets=params["seed_offsets"],
    )
    return SweepCell(capture=capture, **params)


class TestCaptureSpec:
    def test_fingerprint_ignores_network_conditions(self):
        """One capture serves every (hops, link rate, utilization) of a grid."""
        a = CaptureSpec(key="a", scenario=lab_scenario(0.1), n_intervals=100, seed=11)
        b = CaptureSpec(key="b", scenario=lab_scenario(0.5), n_intervals=100, seed=11)
        c = CaptureSpec(
            key="c",
            scenario=replace(lab_scenario(0.1), n_hops=15, link_rate_bps=10e6),
            n_intervals=100,
            seed=11,
        )
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(seed=12),
            dict(n_intervals=101),
            dict(seed_offsets=("train-y", "test-y")),
            dict(scenario=replace(lab_scenario(), warmup_time=1.0)),
            dict(scenario=replace(lab_scenario(), low_rate_pps=5.0)),
        ],
    )
    def test_fingerprint_tracks_gateway_affecting_fields(self, overrides):
        base = dict(key="a", scenario=lab_scenario(), n_intervals=100, seed=11)
        changed = {**base, **overrides}
        assert CaptureSpec(**base).fingerprint() != CaptureSpec(**changed).fingerprint()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CaptureSpec(key="", scenario=lab_scenario(), n_intervals=100)
        with pytest.raises(ConfigurationError):
            CaptureSpec(key="a", scenario=lab_scenario(), n_intervals=2)
        with pytest.raises(ConfigurationError):
            CaptureSpec(
                key="a", scenario=lab_scenario(), n_intervals=100,
                seed_offsets=("same", "same"),
            )

    def test_result_round_trips_through_json(self):
        spec = CaptureSpec(key="a", scenario=lab_scenario(), n_intervals=10, seed=11)
        result = run_capture(spec)
        restored = CaptureResult.from_json_dict(
            result.key, result.fingerprint, result.to_json_dict()
        )
        assert restored.from_cache
        for offset, per_label in result.intervals.items():
            for label, values in per_label.items():
                assert restored.intervals[offset][label].tolist() == values.tolist()


class TestChildCellValidation:
    def test_child_requires_hybrid_mode(self):
        with pytest.raises(ConfigurationError) as excinfo:
            two_level_cell(mode=CollectionMode.ANALYTIC)
        assert "hybrid" in str(excinfo.value)

    def test_child_rejects_seed_mismatch(self):
        capture = CaptureSpec(
            key="p", scenario=lab_scenario(), n_intervals=241, seed=12,
            seed_offsets=("train-x", "test-x"),
        )
        with pytest.raises(ConfigurationError) as excinfo:
            SweepCell(
                key="c", scenario=lab_scenario(), sample_sizes=(60,), trials=4,
                mode=CollectionMode.HYBRID, seed=11,
                seed_offsets=("train-x", "test-x"), capture=capture,
            )
        assert "seed" in str(excinfo.value)

    def test_child_rejects_too_short_capture(self):
        capture = CaptureSpec(
            key="p", scenario=lab_scenario(), n_intervals=100, seed=11,
            seed_offsets=("train-x", "test-x"),
        )
        with pytest.raises(ConfigurationError) as excinfo:
            SweepCell(
                key="c", scenario=lab_scenario(), sample_sizes=(60,), trials=4,
                mode=CollectionMode.HYBRID, seed=11,
                seed_offsets=("train-x", "test-x"), capture=capture,
            )
        assert "241" in str(excinfo.value)

    def test_child_rejects_gateway_config_mismatch(self):
        capture = CaptureSpec(
            key="p", scenario=replace(lab_scenario(), low_rate_pps=5.0),
            n_intervals=241, seed=11, seed_offsets=("train-x", "test-x"),
        )
        with pytest.raises(ConfigurationError) as excinfo:
            SweepCell(
                key="c", scenario=lab_scenario(), sample_sizes=(60,), trials=4,
                mode=CollectionMode.HYBRID, seed=11,
                seed_offsets=("train-x", "test-x"), capture=capture,
            )
        assert "gateway configuration" in str(excinfo.value)

    def test_running_a_child_without_its_capture_fails_loudly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_cell(two_level_cell())
        assert "two-level" in str(excinfo.value)

    def test_fingerprint_distinguishes_two_level_from_flat(self):
        child = two_level_cell()
        flat = replace(child, capture=None)
        assert child.fingerprint() != flat.fingerprint()


class TestBitForBitEquivalence:
    """The acceptance bar: two-level numbers == self-contained hybrid numbers."""

    def test_child_matches_self_contained_hybrid_cell(self):
        children = [two_level_cell(u) for u in (0.1, 0.4)]
        flat = [replace(cell, capture=None) for cell in children]
        two_level = SweepRunner().run(children)
        one_level = SweepRunner().run(flat)
        for cell in children:
            a, b = two_level[cell.key], one_level[cell.key]
            assert a.empirical_detection_rate == b.empirical_detection_rate
            assert a.measured_variance_ratio == b.measured_variance_ratio
            assert a.measured_means == b.measured_means

    def test_fig8_two_level_matches_per_hour_hybrid_cells(self):
        """Figure 8's grid, bit-for-bit against one-level cells at one seed."""
        config = Fig8Config(
            networks=("campus",),
            hours=(2, 14),
            sample_size=80,
            trials=4,
            mode=CollectionMode.HYBRID,
            seed=11,
        )
        cells = Fig8Experiment(config).cells()
        assert all(cell.capture is not None for cell in cells)
        flat = [replace(cell, capture=None) for cell in cells]
        two_level = SweepRunner().run(cells)
        one_level = SweepRunner().run(flat)
        for cell in cells:
            a, b = two_level[cell.key], one_level[cell.key]
            assert a.empirical_detection_rate == b.empirical_detection_rate
            assert a.measured_variance_ratio == b.measured_variance_ratio

    def test_shared_capture_points_draw_independent_noise(self):
        """Points sharing a gateway capture are salted per point: the same
        scenario under two salts yields different (independent) noise draws."""
        base = two_level_cell(0.3)
        salted_a = replace(base, key="a", noise_offsets=("na-train", "na-test"))
        salted_b = replace(base, key="b", noise_offsets=("nb-train", "nb-test"))
        report = SweepRunner().run([salted_a, salted_b])
        assert (
            report["a"].empirical_detection_rate != report["b"].empirical_detection_rate
            or report["a"].measured_variance_ratio != report["b"].measured_variance_ratio
        )

    def test_fig8_hybrid_hours_have_distinct_noise_salts(self):
        config = Fig8Config(
            networks=("campus",), hours=(2, 14), sample_size=80, trials=4,
            mode=CollectionMode.HYBRID, seed=11,
        )
        cells = Fig8Experiment(config).cells()
        assert len({cell.noise_offsets for cell in cells}) == len(cells)
        assert len({cell.seed_offsets for cell in cells}) == 1  # shared gateway


class TestCaptureCaching:
    def test_cold_run_simulates_one_capture_for_many_children(self, tmp_path):
        children = [two_level_cell(u) for u in (0.1, 0.2, 0.4)]
        assert len({cell.capture.fingerprint() for cell in children}) == 1
        runner = SweepRunner(store=ResultsStore(tmp_path))
        report = runner.run(children)
        assert report.captures_simulated == 1
        assert report.capture_hits == 0
        assert "1 gateway captures simulated" in report.summary()

    def test_warm_capture_performs_zero_gateway_simulations(self, tmp_path, monkeypatch):
        """The acceptance bar: cached capture => the event simulator never runs."""
        children = [two_level_cell(u) for u in (0.1, 0.4)]
        cold = SweepRunner(store=ResultsStore(tmp_path)).run(children)

        # Keep only the capture records: the children must recompute their
        # noise, but the gateway must come from the cache.
        capture_only = ResultsStore(tmp_path / "captures")
        full = ResultsStore(tmp_path)
        for fingerprint in full.fingerprints():
            record = full.get(fingerprint, kind="capture")
            if record is not None:
                capture_only.put(fingerprint, record["config"], record["result"], kind="capture")

        import repro.runner.capture as capture_module

        def forbidden(*args, **kwargs):
            raise AssertionError("gateway simulation ran despite a cached capture")

        monkeypatch.setattr(capture_module, "simulate_gateway_capture", forbidden)
        runner = SweepRunner(store=capture_only)  # jobs=1: children run inline
        warm = runner.run(children)
        assert warm.captures_simulated == 0
        assert warm.capture_hits == 1
        assert warm.misses == len(children)  # the cheap noise half recomputed
        for cell in children:
            assert (
                warm[cell.key].empirical_detection_rate
                == cold[cell.key].empirical_detection_rate
            )

    def test_fully_warm_run_needs_neither_captures_nor_cells(self, tmp_path):
        children = [two_level_cell(u) for u in (0.1, 0.4)]
        SweepRunner(store=ResultsStore(tmp_path)).run(children)
        warm = SweepRunner(store=ResultsStore(tmp_path)).run(children)
        assert (warm.hits, warm.misses) == (2, 0)
        assert warm.captures_simulated == 0
        assert warm.capture_hits == 0  # warm cells never resolve their parent

    def test_capture_results_are_deterministic_across_jobs(self):
        children = [two_level_cell(u) for u in (0.1, 0.2, 0.3, 0.4)]
        serial = SweepRunner(jobs=1).run(children)
        parallel = SweepRunner(jobs=4).run(children)
        for cell in children:
            assert (
                serial[cell.key].empirical_detection_rate
                == parallel[cell.key].empirical_detection_rate
            )
