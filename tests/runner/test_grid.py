"""Tests for the grid builder and the multi-seed aggregation layer."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.padding.policies import cit_policy, vit_policy
from repro.runner import (
    GridPoint,
    GridSpec,
    SweepRunner,
    aggregate_cells,
    seed_range,
    split_seed_key,
)


def analytic_grid(**overrides) -> GridSpec:
    params = dict(
        prefix="g",
        scenario=ScenarioConfig(n_hops=1),
        utilizations=(0.1, 0.4),
        seeds=(7,),
        sample_sizes=(50,),
        trials=4,
        mode=CollectionMode.ANALYTIC,
    )
    params.update(overrides)
    scenario = params.pop("scenario")
    prefix = params.pop("prefix")
    return GridSpec.product(prefix, scenario, **params)


class TestSeedHelpers:
    def test_seed_range(self):
        assert seed_range(2003, 3) == (2003, 2004, 2005)
        with pytest.raises(ConfigurationError):
            seed_range(2003, 0)

    def test_split_seed_key(self):
        assert split_seed_key("fig6/utilization=0.2@seed=7") == ("fig6/utilization=0.2", 7)
        assert split_seed_key("fig6/utilization=0.2") == ("fig6/utilization=0.2", None)
        with pytest.raises(ConfigurationError):
            split_seed_key("point@seed=banana")


class TestGridProduct:
    def test_full_axis_product(self):
        grid = GridSpec.product(
            "grid",
            ScenarioConfig(n_hops=1),
            policies=(cit_policy(), vit_policy(sigma_t=1e-4)),
            rate_pairs=((10.0, 40.0), (10.0, 30.0)),
            hops=(1, 3),
            utilizations=(0.1, 0.3),
            seeds=(7, 8, 9),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
        )
        cells = grid.cells()
        assert len(cells) == 2 * 2 * 2 * 2 * 3
        assert len({cell.key for cell in cells}) == len(cells)
        assert len({cell.fingerprint() for cell in cells}) == len(cells)
        assert len(grid.point_keys()) == 16
        sample = cells[0]
        assert sample.key.startswith("grid/policy=")
        assert "rates=10x40" in cells[0].key or "rates=10x40" in cells[1].key

    def test_axis_values_reach_the_scenario(self):
        grid = GridSpec.product(
            "g",
            ScenarioConfig(),
            rate_pairs=((5.0, 20.0),),
            hops=(2,),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
        )
        (point,) = grid.points
        assert point.scenario.low_rate_pps == 5.0
        assert point.scenario.high_rate_pps == 20.0
        assert point.scenario.n_hops == 2

    def test_no_axes_is_a_single_point_named_by_the_prefix(self):
        grid = GridSpec.product(
            "fig4", ScenarioConfig(), sample_sizes=(50,), trials=4,
            mode=CollectionMode.ANALYTIC,
        )
        assert grid.point_keys() == ["fig4"]
        assert [cell.key for cell in grid.cells()] == ["fig4"]

    def test_single_seed_keys_are_bare_multi_seed_keys_are_tagged(self):
        single = analytic_grid(seeds=(7,))
        assert [cell.key for cell in single.cells()] == [
            "g/utilization=0.1", "g/utilization=0.4",
        ]
        multi = analytic_grid(seeds=(7, 8))
        assert [cell.key for cell in multi.cells()] == [
            "g/utilization=0.1@seed=7", "g/utilization=0.4@seed=7",
            "g/utilization=0.1@seed=8", "g/utilization=0.4@seed=8",
        ]

    def test_shared_capture_product_salts_noise_per_point(self):
        """Points that share one gateway capture draw independent noise."""
        grid = GridSpec.product(
            "g",
            ScenarioConfig(n_hops=2),
            utilizations=(0.1, 0.3),
            shared_capture=True,
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.HYBRID,
        )
        cells = grid.cells()
        assert len({cell.capture.fingerprint() for cell in cells}) == 1
        assert len({cell.noise_offsets for cell in cells}) == len(cells)
        assert len({cell.seed_offsets for cell in cells}) == 1

    def test_shared_capture_is_inert_outside_hybrid_mode(self):
        grid = GridSpec.product(
            "g",
            ScenarioConfig(n_hops=1),
            utilizations=(0.1, 0.3),
            shared_capture=True,
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
        )
        for cell in grid.cells():
            assert cell.capture is None
            assert cell.noise_offsets is None

    def test_invalid_axis_combination_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            GridSpec.product(
                "g",
                ScenarioConfig(),
                hops=(0,),
                utilizations=(0.3,),  # cross traffic needs at least one hop
                sample_sizes=(50,),
                trials=4,
                mode=CollectionMode.ANALYTIC,
            )

    def test_empty_axis_is_rejected(self):
        with pytest.raises(ConfigurationError):
            analytic_grid(utilizations=())

    def test_duplicate_seeds_are_rejected(self):
        with pytest.raises(ConfigurationError):
            analytic_grid(seeds=(7, 7))

    def test_point_keys_must_not_carry_the_seed_tag(self):
        with pytest.raises(ConfigurationError):
            GridPoint(key="p@seed=1", scenario=ScenarioConfig())


class TestAggregation:
    def test_grouping_ignores_seed_but_nothing_else(self):
        """Cells differing only in seed aggregate; anything else refuses."""
        grid = analytic_grid(seeds=(7, 8, 9))
        cells = grid.cells()
        report = SweepRunner(jobs=2).run(cells)
        aggregated = aggregate_cells(cells, report)
        assert set(aggregated.results) == {"g/utilization=0.1", "g/utilization=0.4"}
        assert all(point.n_seeds == 3 for point in aggregated.results.values())

        # Same point key, different trials: a grid construction bug.
        from dataclasses import replace

        tampered = list(cells)
        tampered[0] = replace(tampered[0], trials=5)
        bad_report = SweepRunner(jobs=2).run(tampered)
        with pytest.raises(ConfigurationError) as excinfo:
            aggregate_cells(tampered, bad_report)
        assert "more than the seed" in str(excinfo.value)

    def test_mean_is_the_per_seed_average(self):
        import numpy as np

        grid = analytic_grid(seeds=(7, 8, 9))
        report = SweepRunner().run(grid.cells())
        aggregated = grid.aggregate(report)
        for point_key, point in aggregated.results.items():
            per_seed = [
                report[f"{point_key}@seed={seed}"].empirical_detection_rate["variance"][50]
                for seed in (7, 8, 9)
            ]
            assert point.empirical_detection_rate["variance"][50] == pytest.approx(
                float(np.mean(per_seed))
            )

    def test_single_seed_aggregation_has_no_ci(self):
        grid = analytic_grid(seeds=(7,))
        report = SweepRunner().run(grid.cells())
        aggregated = grid.aggregate(report, confidence=0.95)
        point = aggregated["g/utilization=0.1"]
        assert point.n_seeds == 1
        assert point.detection_rate_ci is None
        assert point.variance_ratio_ci is None

    def test_ci_brackets_the_mean_and_is_deterministic(self):
        grid = analytic_grid(seeds=(7, 8, 9, 10))
        report = SweepRunner(jobs=2).run(grid.cells())
        first = grid.aggregate(report, confidence=0.95)
        second = grid.aggregate(report, confidence=0.95)
        for point_key in first.results:
            a, b = first[point_key], second[point_key]
            assert a.detection_rate_ci == b.detection_rate_ci  # derived rng, no global state
            for feature, by_n in a.detection_rate_ci.items():
                for n, (lower, upper) in by_n.items():
                    assert lower <= a.empirical_detection_rate[feature][n] <= upper

    def test_ci_width_shrinks_with_seed_count(self):
        """More seeds per grid point tighten the bootstrap band."""

        def ci_width(n_seeds):
            grid = GridSpec.product(
                "w",
                ScenarioConfig(n_hops=1, cross_utilization=0.4),
                utilizations=(0.4,),
                seeds=tuple(range(100, 100 + n_seeds)),
                sample_sizes=(50,),
                trials=4,
                mode=CollectionMode.ANALYTIC,
            )
            report = SweepRunner(jobs=4).run(grid.cells())
            point = grid.aggregate(report, confidence=0.95)["w/utilization=0.4"]
            lower, upper = point.detection_rate_ci["variance"][50]
            return upper - lower

        assert ci_width(12) < ci_width(3)

    def test_rejects_bad_confidence(self):
        grid = analytic_grid(seeds=(7, 8))
        report = SweepRunner().run(grid.cells())
        with pytest.raises(ConfigurationError):
            grid.aggregate(report, confidence=1.5)

    def test_piat_stats_average_across_seeds(self):
        grid = GridSpec.product(
            "p",
            ScenarioConfig(),
            seeds=(7, 8),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            collect_piat_stats=True,
        )
        report = SweepRunner().run(grid.cells())
        point = grid.aggregate(report)["p"]
        assert set(point.piat_stats) == {"low", "high"}
        assert 0.0 <= point.piat_stats["low"]["looks_normal"] <= 1.0
