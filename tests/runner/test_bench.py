"""Tests for the benchmark harness: schema, comparison semantics, and the runner.

The comparison logic is what CI trusts to catch performance regressions, so
its direction-awareness (seconds regress up, speedups regress down), its
tolerance arithmetic and its handling of missing baselines are pinned
exactly.  One slow test runs the real benchmark at miniature sizes to keep
the measurement path itself honest.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runner.bench import (
    BENCH_SCHEMA_VERSION,
    RATIO_METRICS,
    BenchResult,
    collect_machine_info,
    compare,
    metric_direction,
    run_bench,
)


def make_result(metrics, pr="test"):
    return BenchResult(
        pr=pr,
        created_utc="2026-08-07T00:00:00Z",
        machine={"platform": "test"},
        metrics=metrics,
    )


class TestMetricDirection:
    def test_seconds_are_lower_better(self):
        assert metric_direction("sweep_cold_seconds") == "lower"

    def test_speedups_and_rates_are_higher_better(self):
        assert metric_direction("cold_capture_speedup") == "higher"
        assert metric_direction("engine_events_per_sec") == "higher"

    def test_unknown_suffixes_are_rejected(self):
        with pytest.raises(ConfigurationError):
            metric_direction("wall_clock")

    def test_ratio_metrics_follow_the_convention(self):
        for name in RATIO_METRICS:
            assert metric_direction(name) == "higher"


class TestBenchResultSchema:
    def test_round_trips_through_json(self, tmp_path):
        result = make_result({"a_seconds": 1.5, "b_speedup": 12.0})
        path = tmp_path / "BENCH_test.json"
        result.save(path)
        loaded = BenchResult.load(path)
        assert loaded == result
        # And the on-disk form is plain, sorted, newline-terminated JSON.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == BENCH_SCHEMA_VERSION

    def test_rejects_unknown_schema_versions(self, tmp_path):
        payload = make_result({"a_seconds": 1.0}).to_json_dict()
        payload["schema"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            BenchResult.load(path)

    def test_rejects_misnamed_and_non_finite_metrics(self):
        with pytest.raises(ConfigurationError):
            make_result({"wall_clock": 1.0})
        with pytest.raises(ConfigurationError):
            make_result({"a_seconds": float("nan")})
        with pytest.raises(ConfigurationError):
            make_result({"a_seconds": -1.0})
        with pytest.raises(ConfigurationError):
            make_result({})

    def test_missing_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BenchResult.load(tmp_path / "absent.json")

    def test_machine_info_has_the_expected_keys(self):
        info = collect_machine_info()
        assert {"platform", "python", "numpy", "cpu_count"} <= set(info)


class TestCompare:
    def test_regression_in_seconds_is_detected(self):
        current = make_result({"run_seconds": 1.5})
        baseline = make_result({"run_seconds": 1.0})
        comparison = compare(current, baseline, max_regression=0.2)
        assert not comparison.ok
        assert comparison.regressions[0].name == "run_seconds"
        assert comparison.regressions[0].regression == pytest.approx(0.5)

    def test_regression_in_speedup_is_detected(self):
        current = make_result({"kernel_speedup": 5.0})
        baseline = make_result({"kernel_speedup": 10.0})
        comparison = compare(current, baseline, max_regression=0.2)
        assert not comparison.ok
        assert comparison.regressions[0].regression == pytest.approx(0.5)

    def test_improvements_pass_and_read_negative(self):
        current = make_result({"run_seconds": 0.5, "kernel_speedup": 20.0})
        baseline = make_result({"run_seconds": 1.0, "kernel_speedup": 10.0})
        comparison = compare(current, baseline, max_regression=0.2)
        assert comparison.ok
        assert all(row.regression == pytest.approx(-0.5) or row.regression == pytest.approx(-1.0)
                   for row in comparison.rows)

    def test_changes_within_tolerance_pass(self):
        current = make_result({"run_seconds": 1.15})
        baseline = make_result({"run_seconds": 1.0})
        assert compare(current, baseline, max_regression=0.2).ok
        assert not compare(current, baseline, max_regression=0.1).ok

    def test_missing_baseline_is_tolerated(self):
        comparison = compare(make_result({"run_seconds": 1.0}), None)
        assert comparison.ok
        assert comparison.rows == ()

    def test_one_sided_metrics_are_skipped_not_failed(self):
        current = make_result({"run_seconds": 1.0, "new_speedup": 5.0})
        baseline = make_result({"run_seconds": 1.0, "old_speedup": 5.0})
        comparison = compare(current, baseline)
        assert comparison.ok
        assert set(comparison.skipped) == {"new_speedup", "old_speedup"}

    def test_metric_filter_restricts_the_comparison(self):
        current = make_result({"run_seconds": 99.0, "kernel_speedup": 10.0})
        baseline = make_result({"run_seconds": 1.0, "kernel_speedup": 10.0})
        assert not compare(current, baseline).ok
        assert compare(current, baseline, metrics=["kernel_speedup"]).ok
        with pytest.raises(ConfigurationError):
            compare(current, baseline, metrics=["no_such_speedup"])

    def test_negative_tolerance_is_rejected(self):
        with pytest.raises(ConfigurationError):
            compare(make_result({"a_seconds": 1.0}), make_result({"a_seconds": 1.0}),
                    max_regression=-0.1)

    def test_report_text_names_the_verdicts(self):
        current = make_result({"run_seconds": 2.0, "kernel_speedup": 30.0})
        baseline = make_result({"run_seconds": 1.0, "kernel_speedup": 10.0})
        text = compare(current, baseline).to_text()
        assert "REGRESSED" in text and "improved" in text and "FAIL" in text


class TestRunBench:
    @pytest.fixture(scope="class")
    def result(self):
        # Miniature sizes: the point is exercising the measurement path, not
        # producing stable timings.
        return run_bench("test", capture_intervals=400, engine_events=2000, repeats=1)

    def test_produces_the_full_metric_set(self, result):
        assert {
            "capture_event_seconds",
            "capture_vectorized_seconds",
            "cold_capture_speedup",
            "kernel_intervals_per_sec",
            "engine_events_per_sec",
            "sweep_cold_seconds",
            "sweep_warm_seconds",
            "sweep_warm_speedup",
            "sweep_cells_per_sec",
            "serial_dispatch_seconds",
            "process_dispatch_seconds",
            "dispatch_overhead_seconds",
            "queue_cells_per_sec",
            "population_flows_per_sec",
        } == set(result.metrics)
        # dispatch_overhead is clamped at 0.0 (a loaded machine can time the
        # pool under the serial loop); everything else must be positive.
        assert all(
            value > 0.0
            for name, value in result.metrics.items()
            if name != "dispatch_overhead_seconds"
        )
        assert result.metrics["dispatch_overhead_seconds"] >= 0.0

    def test_serial_beats_the_pool_on_the_dispatch_grid(self, result):
        # The tentpole claim of the serial backend: on a trivial grid the
        # pool's startup/pickle cost dominates, so inline execution wins.
        assert (
            result.metrics["serial_dispatch_seconds"]
            < result.metrics["process_dispatch_seconds"]
        )

    def test_machine_info_records_available_cpus(self, result):
        available = result.machine["cpu_count_available"]
        assert isinstance(available, int) and available >= 1
        assert available <= result.machine["cpu_count"]

    def test_kernels_agreed_and_crosscheck_recorded(self, result):
        assert result.notes["captures_identical"] is True
        crosscheck = result.notes["analytic_crosscheck"]
        assert crosscheck["measured_variance_ratio"] == pytest.approx(
            crosscheck["model_variance_ratio"], rel=0.5
        )
        assert 0.5 <= crosscheck["exact_detection_rate_at_1000"] <= 1.0

    def test_vectorized_kernel_is_faster(self, result):
        # The committed artifact records ~75x; even tiny captures on a busy
        # CI box clear 1x comfortably.
        assert result.metrics["cold_capture_speedup"] > 1.0

    def test_artifact_round_trips(self, result, tmp_path):
        path = tmp_path / "BENCH_test.json"
        result.save(path)
        assert BenchResult.load(path) == result


class TestZeroBaseline:
    """A zero-valued baseline admits no relative change; it must fail loudly."""

    def test_nonzero_current_raises_and_names_the_metric(self):
        current = make_result({"run_seconds": 1.5})
        baseline = make_result({"run_seconds": 0.0})
        with pytest.raises(ConfigurationError, match="run_seconds"):
            compare(current, baseline)

    def test_higher_better_metrics_fail_the_same_way(self):
        current = make_result({"kernel_speedup": 5.0})
        baseline = make_result({"kernel_speedup": 0.0})
        with pytest.raises(ConfigurationError, match="kernel_speedup"):
            compare(current, baseline)

    def test_identical_zeros_are_a_legitimate_no_change(self):
        current = make_result({"run_seconds": 0.0})
        baseline = make_result({"run_seconds": 0.0})
        comparison = compare(current, baseline)
        assert comparison.ok
        assert comparison.rows[0].regression == 0.0

    def test_the_error_suggests_rerecording_the_baseline(self):
        current = make_result({"run_seconds": 1.5})
        baseline = make_result({"run_seconds": 0.0})
        with pytest.raises(ConfigurationError, match="re-record the baseline"):
            compare(current, baseline)
