"""End-to-end tests for the ``repro sweep`` subcommand and the CI cache fixture."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.cli import build_parser, main

FIXTURE_CACHE = Path(__file__).resolve().parent.parent / "fixtures" / "sweep_cache"


def strip_summary(output: str) -> str:
    """The report text without the trailing ``sweep summary:`` accounting line."""
    return "\n".join(
        line for line in output.splitlines() if not line.startswith("sweep summary:")
    )


class TestSweepParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.figures == ["fig4", "fig5", "fig6", "fig8"]
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_figure_selection(self):
        args = build_parser().parse_args(["sweep", "--figures", "fig6", "fig8"])
        assert args.figures == ["fig6", "fig8"]

    def test_jobs_and_cache_dir_accepted_on_figure_commands(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--cache-dir", "/tmp/cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == Path("/tmp/cache")


class TestSweepCommand:
    def test_jobs_count_does_not_change_the_results(self, capsys):
        """The acceptance bar: fig6-style grid, bit-identical at --jobs 1 vs 4."""
        argv = ["sweep", "--figures", "fig6", "--preset", "smoke"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert strip_summary(serial) == strip_summary(parallel)
        assert "jobs=1" in serial and "jobs=4" in parallel

    def test_second_invocation_performs_zero_simulations(self, tmp_path, capsys):
        argv = [
            "sweep", "--figures", "fig6", "--preset", "smoke",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "2 simulated" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert "2 cache hits" in warm
        assert strip_summary(cold) == strip_summary(warm)

    def test_cache_survives_jobs_count_changes(self, tmp_path, capsys):
        base = ["sweep", "--figures", "fig5", "--preset", "smoke", "--cache-dir", str(tmp_path)]
        main(base + ["--jobs", "2"])
        capsys.readouterr()
        main(base + ["--jobs", "1"])
        assert "0 simulated" in capsys.readouterr().out

    def test_sweep_output_file(self, tmp_path, capsys):
        target = tmp_path / "reports" / "sweep.txt"
        assert (
            main(
                ["sweep", "--figures", "fig6", "--preset", "smoke", "--output", str(target)]
            )
            == 0
        )
        capsys.readouterr()
        assert "Figure 6" in target.read_text()

    def test_configuration_errors_exit_cleanly(self, capsys):
        """No traceback for bad values that pass argparse but fail validation."""
        assert main(["fig6", "--preset", "smoke", "--jobs", "0"]) == 2
        captured = capsys.readouterr()
        assert "repro: error:" in captured.err
        assert "jobs=0" in captured.err

    def test_figure_command_accepts_jobs_and_cache(self, tmp_path, capsys):
        argv = ["fig6", "--preset", "smoke", "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        from repro.runner import ResultsStore

        assert len(ResultsStore(tmp_path)) > 0
        assert list(tmp_path.glob("??/*.jsonl"))  # sharded layout on disk


class TestMultiSeedCli:
    """``--seeds N --ci``: mean ± bootstrap CI per grid point, from the CLI."""

    def test_single_seed_output_is_unchanged_by_the_seeds_flag(self, capsys):
        argv = ["sweep", "--figures", "fig6", "--preset", "smoke"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--seeds", "1"]) == 0
        explicit = capsys.readouterr().out
        assert bare == explicit

    def test_multi_seed_sweep_reports_mean_and_ci_for_every_figure(self, capsys):
        assert main(["sweep", "--preset", "smoke", "--seeds", "3", "--ci"]) == 0
        out = capsys.readouterr().out
        for figure_title in ("Figure 4", "Figure 5", "Figure 6", "Figure 8"):
            assert figure_title in out
        assert out.count("mean of 3 seeds") >= 4
        assert "ci95%" in out
        assert "[" in out and "]" in out
        assert "27 cells" in out  # 3 seeds: the 9-cell smoke grid tripled

    def test_ci_without_enough_seeds_fails_at_parse_time(self, capsys):
        """The bad combination is an argparse error, not a deep experiment one."""
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--preset", "smoke", "--ci"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "--ci requires --seeds >= 2" in err

    def test_multi_seed_cache_round_trip(self, tmp_path, capsys):
        argv = [
            "sweep", "--figures", "fig5", "--preset", "smoke",
            "--seeds", "2", "--ci", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "4 cells, 4 simulated" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert strip_summary(cold) == strip_summary(warm)


class TestCacheCommand:
    def test_compact_drops_duplicates_and_migrates_legacy(self, tmp_path, capsys):
        # Write a legacy flat store by hand, then a sharded record on top.
        import json

        from repro.runner import SCHEMA_VERSION, ResultsStore

        tmp_path.joinpath("results.jsonl").write_text(
            json.dumps(
                {"schema": SCHEMA_VERSION, "fingerprint": "old1", "config": {}, "result": {"x": 1}}
            )
            + "\n"
        )
        store = ResultsStore(tmp_path)
        store.put("abc", {}, {"x": 1})
        store.put("abc", {}, {"x": 2})
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache compact:" in out
        assert "1 superseded" in out
        assert "1 legacy" in out
        assert not (tmp_path / "results.jsonl").exists()
        reopened = ResultsStore(tmp_path)
        assert reopened.get("abc")["result"] == {"x": 2}
        assert reopened.get("old1")["result"] == {"x": 1}

    def test_cache_dir_is_required(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "compact"])
        capsys.readouterr()


class TestCommittedFixture:
    """The mini store committed for the CI warm-cache smoke job stays warm."""

    def test_fixture_exists(self):
        assert (FIXTURE_CACHE / "results.jsonl").is_file()

    def test_smoke_sweep_is_fully_cached_by_the_fixture(self, tmp_path, capsys):
        """Every cell of the default smoke grid must hit the committed cache.

        If this fails after an intentional change to the smoke preset, the
        cell schema or the scenario defaults, regenerate the fixture:

            rm tests/fixtures/sweep_cache/results.jsonl
            PYTHONPATH=src python -m repro sweep --preset smoke --jobs 2 \
                --cache-dir tests/fixtures/sweep_cache
        """
        cache = tmp_path / "cache"
        shutil.copytree(FIXTURE_CACHE, cache)
        assert main(["sweep", "--preset", "smoke", "--jobs", "2", "--cache-dir", str(cache)]) == 0
        replayed = capsys.readouterr().out
        assert "0 simulated" in replayed

        # The replayed numbers must match a fresh simulation — "0 simulated"
        # alone would also pass for a stale fixture.
        assert main(["sweep", "--preset", "smoke", "--jobs", "2"]) == 0
        fresh = capsys.readouterr().out
        assert strip_summary(replayed) == strip_summary(fresh)
