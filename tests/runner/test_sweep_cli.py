"""End-to-end tests for the ``repro sweep`` subcommand and the CI cache fixture."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.cli import build_parser, main

FIXTURE_CACHE = Path(__file__).resolve().parent.parent / "fixtures" / "sweep_cache"


def strip_summary(output: str) -> str:
    """The report text without the trailing ``sweep summary:`` accounting line."""
    return "\n".join(
        line for line in output.splitlines() if not line.startswith("sweep summary:")
    )


class TestSweepParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.figures == ["fig4", "fig5", "fig6", "fig8"]
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_figure_selection(self):
        args = build_parser().parse_args(["sweep", "--figures", "fig6", "fig8"])
        assert args.figures == ["fig6", "fig8"]

    def test_jobs_and_cache_dir_accepted_on_figure_commands(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--cache-dir", "/tmp/cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == Path("/tmp/cache")


class TestSweepCommand:
    def test_jobs_count_does_not_change_the_results(self, capsys):
        """The acceptance bar: fig6-style grid, bit-identical at --jobs 1 vs 4."""
        argv = ["sweep", "--figures", "fig6", "--preset", "smoke"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert strip_summary(serial) == strip_summary(parallel)
        assert "jobs=1" in serial and "jobs=4" in parallel

    def test_second_invocation_performs_zero_simulations(self, tmp_path, capsys):
        argv = [
            "sweep", "--figures", "fig6", "--preset", "smoke",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "2 simulated" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert "2 cache hits" in warm
        assert strip_summary(cold) == strip_summary(warm)

    def test_cache_survives_jobs_count_changes(self, tmp_path, capsys):
        base = ["sweep", "--figures", "fig5", "--preset", "smoke", "--cache-dir", str(tmp_path)]
        main(base + ["--jobs", "2"])
        capsys.readouterr()
        main(base + ["--jobs", "1"])
        assert "0 simulated" in capsys.readouterr().out

    def test_sweep_output_file(self, tmp_path, capsys):
        target = tmp_path / "reports" / "sweep.txt"
        assert (
            main(
                ["sweep", "--figures", "fig6", "--preset", "smoke", "--output", str(target)]
            )
            == 0
        )
        capsys.readouterr()
        assert "Figure 6" in target.read_text()

    def test_configuration_errors_exit_cleanly(self, capsys):
        """No traceback for bad values that pass argparse but fail validation."""
        assert main(["fig6", "--preset", "smoke", "--jobs", "0"]) == 2
        captured = capsys.readouterr()
        assert "repro: error:" in captured.err
        assert "jobs=0" in captured.err

    def test_figure_command_accepts_jobs_and_cache(self, tmp_path, capsys):
        argv = ["fig6", "--preset", "smoke", "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert (tmp_path / "results.jsonl").exists()


class TestCommittedFixture:
    """The mini store committed for the CI warm-cache smoke job stays warm."""

    def test_fixture_exists(self):
        assert (FIXTURE_CACHE / "results.jsonl").is_file()

    def test_smoke_sweep_is_fully_cached_by_the_fixture(self, tmp_path, capsys):
        """Every cell of the default smoke grid must hit the committed cache.

        If this fails after an intentional change to the smoke preset, the
        cell schema or the scenario defaults, regenerate the fixture:

            rm tests/fixtures/sweep_cache/results.jsonl
            PYTHONPATH=src python -m repro sweep --preset smoke --jobs 2 \
                --cache-dir tests/fixtures/sweep_cache
        """
        cache = tmp_path / "cache"
        shutil.copytree(FIXTURE_CACHE, cache)
        assert main(["sweep", "--preset", "smoke", "--jobs", "2", "--cache-dir", str(cache)]) == 0
        replayed = capsys.readouterr().out
        assert "0 simulated" in replayed

        # The replayed numbers must match a fresh simulation — "0 simulated"
        # alone would also pass for a stale fixture.
        assert main(["sweep", "--preset", "smoke", "--jobs", "2"]) == 0
        fresh = capsys.readouterr().out
        assert strip_summary(replayed) == strip_summary(fresh)
