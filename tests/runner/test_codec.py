"""Tests for the queue codec: config dict → cell/capture reconstruction.

The codec is what lets a pull-based worker execute work it never built in
Python: every reconstruction must round-trip to the *exact* claimed
fingerprint, and anything this build cannot faithfully rebuild must be
refused loudly — silently executing with different parameters would poison
the content-addressed cache.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.policies import cit_policy, vit_policy
from repro.runner import SweepCell
from repro.runner.backends.codec import (
    capture_from_config,
    cell_from_config,
    policy_from_config,
    scenario_from_config,
    verify_fingerprint,
)
from repro.runner.capture import CaptureSpec


def make_cell(**overrides) -> SweepCell:
    params = dict(
        key="codec/cell",
        scenario=ScenarioConfig(n_hops=1, cross_utilization=0.15),
        sample_sizes=(50, 100),
        trials=4,
        mode=CollectionMode.ANALYTIC,
        seed=11,
    )
    params.update(overrides)
    return SweepCell(**params)


class TestVerifyFingerprint:
    def test_matching_fingerprint_is_returned(self):
        cell = make_cell()
        config = cell.config_dict()
        assert verify_fingerprint(cell.key, config, cell.fingerprint()) == (
            cell.fingerprint()
        )

    def test_mismatch_names_both_fingerprints(self):
        cell = make_cell()
        with pytest.raises(ConfigurationError) as excinfo:
            verify_fingerprint(cell.key, cell.config_dict(), "deadbeef")
        message = str(excinfo.value)
        assert "deadbeef" in message
        assert cell.fingerprint() in message

    def test_tampered_config_is_refused(self):
        cell = make_cell()
        config = cell.config_dict()
        config["trials"] = 999
        with pytest.raises(ConfigurationError):
            verify_fingerprint(cell.key, config, cell.fingerprint())


class TestCellRoundTrip:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"mode": CollectionMode.SIMULATION, "collect_piat_stats": True},
            {"entropy_bin_width": 0.005},
            {"kde_bandwidth": 0.002},
            {"sample_sizes": (10,), "seed": 2003, "trials": 2},
        ],
    )
    def test_fingerprint_exact_reconstruction(self, overrides):
        cell = make_cell(**overrides)
        rebuilt = cell_from_config(cell.key, cell.config_dict())
        assert rebuilt.fingerprint() == cell.fingerprint()
        assert rebuilt.config_dict() == cell.config_dict()

    def test_policy_variants_round_trip(self):
        for policy in (cit_policy(0.01), vit_policy(0.003, 0.01, "uniform")):
            cell = make_cell(scenario=ScenarioConfig(policy=policy))
            rebuilt = cell_from_config(cell.key, cell.config_dict())
            assert rebuilt.fingerprint() == cell.fingerprint()

    def test_disturbance_round_trips(self):
        scenario = ScenarioConfig(
            disturbance=InterruptDisturbance(
                base_jitter_std=2e-4, blocking_window=0.02, blocking_delay_mean=1e-3
            )
        )
        cell = make_cell(scenario=scenario)
        rebuilt = cell_from_config(cell.key, cell.config_dict())
        assert rebuilt.fingerprint() == cell.fingerprint()

    def test_hybrid_cell_with_capture_round_trips(self):
        scenario = ScenarioConfig(n_hops=1, cross_utilization=0.15)
        spec = CaptureSpec(
            key="codec/cell/capture",
            scenario=scenario,
            n_intervals=64,
            seed=11,
        )
        cell = make_cell(
            scenario=scenario,
            mode=CollectionMode.HYBRID,
            capture=spec,
            sample_sizes=(10,),
            trials=4,
            noise_offsets=("noise-train", "noise-test"),
        )
        rebuilt = cell_from_config(cell.key, cell.config_dict())
        assert rebuilt.capture is not None
        assert rebuilt.capture.fingerprint() == cell.capture.fingerprint()
        assert rebuilt.fingerprint() == cell.fingerprint()

    def test_wrong_schema_version_is_refused(self):
        cell = make_cell()
        config = cell.config_dict()
        config["schema"] = 999
        with pytest.raises(ConfigurationError) as excinfo:
            cell_from_config(cell.key, config)
        assert "schema" in str(excinfo.value)

    def test_missing_field_is_a_configuration_error(self):
        cell = make_cell()
        config = cell.config_dict()
        del config["trials"]
        with pytest.raises(ConfigurationError):
            cell_from_config(cell.key, config)

    def test_unknown_policy_kind_is_refused(self):
        with pytest.raises(ConfigurationError) as excinfo:
            policy_from_config({"kind": "FIFO", "mean_interval": 0.01})
        assert "FIFO" in str(excinfo.value)

    def test_scenario_without_policy_is_refused(self):
        with pytest.raises(ConfigurationError):
            scenario_from_config({"low_rate_pps": 10.0})


class TestCaptureRoundTrip:
    def _spec(self) -> CaptureSpec:
        return CaptureSpec(
            key="codec/capture",
            scenario=ScenarioConfig(n_hops=1),
            n_intervals=128,
            seed=3,
        )

    def test_fingerprint_exact_reconstruction(self):
        spec = self._spec()
        rebuilt = capture_from_config(spec.key, spec.config_dict())
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert rebuilt.config_dict() == spec.config_dict()

    def test_non_capture_kind_is_refused(self):
        cell = make_cell()
        with pytest.raises(ConfigurationError) as excinfo:
            capture_from_config("x", cell.config_dict())
        assert "gateway-capture" in str(excinfo.value)

    def test_key_is_cosmetic_and_excluded_from_the_fingerprint(self):
        spec = self._spec()
        rebuilt = capture_from_config("a/totally/different/key", spec.config_dict())
        assert rebuilt.fingerprint() == spec.fingerprint()
