"""Tests for the filesystem work queue: protocol primitives, parity, recovery.

The queue backend's claims are strong — byte-identical results at any worker
count, survival of SIGKILLed workers mid-lease, loud rejection of tampered
payloads — so each is pinned here against the serial reference.  Local
workers are forked, which is what lets the parent's monkeypatched
``repro.runner.runner.run_cell`` (the fault-injection seam every backend
shares) reach into worker processes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.exceptions import ConfigurationError, SweepError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.runner import CaptureSpec, ResultsStore, SweepCell, SweepRunner
from repro.runner.backends.base import TaskFailure
from repro.runner.backends.queue import (
    QueueBackend,
    WorkQueue,
    drain_pending,
    entry_from_task,
    merge_outcomes,
    run_worker,
)


def grid(n_cells: int = 4, **overrides) -> list:
    cells = []
    for i in range(n_cells):
        utilization = 0.05 + 0.1 * i
        params = dict(
            key=f"grid/util={utilization:.2f}",
            scenario=ScenarioConfig(n_hops=1, cross_utilization=utilization),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=7,
        )
        params.update(overrides)
        cells.append(SweepCell(**params))
    return cells


def two_level_cells(n: int = 2) -> list:
    """Hybrid children sharing one gateway capture (the fig8 shape)."""
    cells = []
    for i in range(n):
        scenario = ScenarioConfig(n_hops=3, cross_utilization=0.1 + 0.2 * i)
        capture = CaptureSpec(
            key="parent",
            scenario=scenario,
            n_intervals=241,
            seed=11,
            seed_offsets=("train-x", "test-x"),
        )
        cells.append(
            SweepCell(
                key=f"child/util={0.1 + 0.2 * i:.1f}",
                scenario=scenario,
                sample_sizes=(60,),
                trials=4,
                mode=CollectionMode.HYBRID,
                seed=11,
                seed_offsets=("train-x", "test-x"),
                capture=capture,
            )
        )
    return cells


def comparable(result) -> tuple:
    return (
        result.empirical_detection_rate,
        result.measured_variance_ratio,
        result.measured_means,
        result.piat_stats,
    )


SHORT = dict(lease_timeout=5.0, poll_interval=0.02)


class TestWorkQueuePrimitives:
    def test_enqueue_claim_release_cycle(self, tmp_path):
        queue = WorkQueue(tmp_path)
        entry = entry_from_task(("cell", grid(1)[0], None))
        assert queue.enqueue(entry) is True
        assert queue.enqueue(entry) is False  # already queued
        lease = queue.claim("w1")
        assert lease is not None and lease.name.endswith(".w1.json")
        assert queue.claim("w2") is None  # nothing left
        queue.release(lease)
        assert queue.claim("w2") is not None

    def test_claim_is_atomic_under_racing_workers(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(entry_from_task(("cell", grid(1)[0], None)))
        winners = [queue.claim(f"w{i}") for i in range(8)]
        assert sum(1 for lease in winners if lease is not None) == 1

    def test_stale_lease_is_stolen_only_after_heartbeat_expiry(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(entry_from_task(("cell", grid(1)[0], None)))
        queue.heartbeat("owner")
        lease = queue.claim("owner")
        assert lease is not None
        # Fresh heartbeat: nothing to steal.
        assert queue.steal("thief", lease_timeout=60.0) is None
        # Missing heartbeat counts as stale immediately.
        queue.remove_heartbeat("owner")
        stolen = queue.steal("thief", lease_timeout=60.0)
        assert stolen is not None and stolen.name.endswith(".thief.json")

    def test_requeue_stale_returns_work_to_the_queue(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(entry_from_task(("cell", grid(1)[0], None)))
        queue.claim("ghost")  # never heartbeats
        assert queue.requeue_stale(lease_timeout=60.0) == 1
        assert queue.claim("live") is not None

    def test_fingerprints_must_be_hashlike_tokens(self, tmp_path):
        queue = WorkQueue(tmp_path)
        with pytest.raises(ConfigurationError):
            queue.enqueue({"fingerprint": "../../etc/passwd"})

    def test_worker_ids_with_dots_parse_back_out_of_leases(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(entry_from_task(("cell", grid(1)[0], None)))
        lease = queue.claim("host.example.com-42")
        fingerprint, owner = WorkQueue._parse_lease(lease)
        assert owner == "host.example.com-42"
        assert fingerprint == grid(1)[0].fingerprint()

    def test_result_shards_only_yield_complete_lines(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        shard = queue.results_dir / "w.jsonl"
        shard.write_text('{"fingerprint": "aa", "status": "ok"}\n{"partial')
        offsets: dict = {}
        records = list(queue.read_new_records(offsets))
        assert [r["fingerprint"] for r in records] == ["aa"]
        # Completing the partial line surfaces it on the next scan.
        shard.write_text(
            '{"fingerprint": "aa", "status": "ok"}\n'
            '{"fingerprint": "bb", "status": "ok"}\n'
        )
        assert [r["fingerprint"] for r in queue.read_new_records(offsets)] == ["bb"]

    def test_status_counts_queue_state(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for cell in grid(3):
            queue.enqueue(entry_from_task(("cell", cell, None)))
        queue.heartbeat("w")
        queue.claim("w")
        counters = queue.status()
        assert counters["queued"] == 2
        assert counters["leased"] == 1
        assert counters["stale_leases"] == 0
        assert counters["workers_live"] == 1


class TestQueueParity:
    def test_byte_identical_to_serial_at_every_worker_count(self, tmp_path):
        cells = grid()
        reference = SweepRunner(backend="serial").run(cells)
        for workers in (1, 2, 4):
            store = ResultsStore(tmp_path / f"store-{workers}")
            report = SweepRunner(
                jobs=workers,
                store=store,
                backend="queue",
                backend_options=dict(SHORT),
            ).run(cells)
            assert list(report.results) == list(reference.results)
            for key in reference.results:
                assert comparable(report[key]) == comparable(reference[key])
            # The store records are the full serialised results; they must
            # match the serial reference exactly, minus wall-clock bookkeeping.
            for key, result in reference.results.items():
                stored = store.get(result.fingerprint)["result"]
                expected = result.to_json_dict()
                stored.pop("elapsed_seconds"), expected.pop("elapsed_seconds")
                assert stored == expected

    def test_two_level_cells_flow_through_the_queue(self, tmp_path):
        cells = two_level_cells(2)
        reference = SweepRunner(backend="serial", store=ResultsStore(tmp_path / "ref")).run(
            cells
        )
        store = ResultsStore(tmp_path / "store")
        report = SweepRunner(
            jobs=2, store=store, backend="queue", backend_options=dict(SHORT)
        ).run(cells)
        assert report.captures_simulated == 1  # one shared gateway capture
        for key in reference.results:
            assert comparable(report[key]) == comparable(reference[key])

    def test_warm_queue_run_hits_the_cache_without_workers(self, tmp_path):
        cells = grid(3)
        store_dir = tmp_path / "store"
        SweepRunner(
            jobs=2,
            store=ResultsStore(store_dir),
            backend="queue",
            backend_options=dict(SHORT),
        ).run(cells)
        warm = SweepRunner(
            jobs=2,
            store=ResultsStore(store_dir),
            backend="queue",
            backend_options=dict(SHORT),
        ).run(cells)
        assert (warm.hits, warm.misses) == (3, 0)


class TestQueueFailures:
    def test_worker_failure_aborts_naming_the_cell(self, tmp_path):
        cells = grid(1, features=("bogus",))
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(
                jobs=1,
                store=ResultsStore(tmp_path),
                backend="queue",
                backend_options=dict(SHORT),
            ).run(cells)
        message = str(excinfo.value)
        assert cells[0].key in message
        assert "worker traceback" in message

    def test_transient_failures_are_retried_through_the_queue(
        self, tmp_path, monkeypatch
    ):
        import repro.runner.runner as runner_module
        from repro.runner.cells import run_cell as real_run_cell

        counters = tmp_path / "attempts"
        counters.mkdir()

        def flaky(cell, capture=None):
            counter = counters / cell.fingerprint()[:12]
            attempts = int(counter.read_text()) if counter.exists() else 0
            counter.write_text(str(attempts + 1))
            if attempts < 1:
                raise RuntimeError(f"transient failure #{attempts + 1}")
            return real_run_cell(cell, capture=capture)

        monkeypatch.setattr(runner_module, "run_cell", flaky)
        lines: list = []
        cells = grid(2)
        report = SweepRunner(
            jobs=2,
            store=ResultsStore(tmp_path / "store"),
            backend="queue",
            retries=2,
            progress=lines.append,
            backend_options=dict(SHORT),
        ).run(cells)
        assert len(report.results) == 2
        assert any("retrying" in line for line in lines)

    def test_wait_timeout_fails_loudly_without_workers(self, tmp_path):
        store = ResultsStore(tmp_path)
        backend = QueueBackend(
            store,
            spawn_workers=False,
            wait_timeout=0.5,
            poll_interval=0.02,
        )
        tasks = [("cell", cell, None) for cell in grid(1)]
        with pytest.raises(SweepError) as excinfo:
            list(backend.execute(tasks))
        assert "repro worker" in str(excinfo.value)


class TestCrashRecovery:
    def test_sigkilled_worker_mid_lease_is_rescued(self, tmp_path, monkeypatch):
        """Kill a worker holding a lease; a sibling steals and completes it.

        The victim's first attempt hangs (marker-gated sleep) and is then
        SIGKILLed — heartbeat thread and all.  Once its heartbeat goes stale
        the rescuer steals the lease, and because cells are pure functions of
        their config the re-execution produces the identical record.
        """
        import repro.runner.runner as runner_module
        from repro.runner.cells import run_cell as real_run_cell

        cells = grid(1)
        reference = SweepRunner(backend="serial").run(cells)
        store = ResultsStore(tmp_path / "store")
        queue = WorkQueue(store.root)
        queue.ensure()
        entry = entry_from_task(("cell", cells[0], None))
        queue.enqueue(entry)

        marker = tmp_path / "pass"

        def sleepy(cell, capture=None):
            if not marker.exists():
                time.sleep(60.0)
            return real_run_cell(cell, capture=capture)

        monkeypatch.setattr(runner_module, "run_cell", sleepy)
        context = multiprocessing.get_context("fork")
        worker_kwargs = dict(
            store_root=str(store.root),
            poll_interval=0.02,
            lease_timeout=1.0,
        )
        victim = context.Process(
            target=run_worker,
            kwargs=dict(worker_kwargs, worker_id="victim"),
            daemon=True,
        )
        victim.start()
        deadline = time.monotonic() + 30.0
        while not any(queue.leased_dir.glob("*.victim.json")):
            assert time.monotonic() < deadline, "victim never claimed the lease"
            time.sleep(0.02)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        marker.write_text("")  # attempts after the crash succeed

        rescuer = context.Process(
            target=run_worker,
            kwargs=dict(worker_kwargs, worker_id="rescuer", max_idle=20.0),
            daemon=True,
        )
        rescuer.start()
        try:
            outcomes = list(
                merge_outcomes(
                    queue,
                    {entry["fingerprint"]: entry},
                    poll_interval=0.02,
                    lease_timeout=1.0,
                    wait_timeout=60.0,
                )
            )
        finally:
            rescuer.terminate()
            rescuer.join()
        assert len(outcomes) == 1
        assert not isinstance(outcomes[0], TaskFailure)
        assert comparable(outcomes[0]) == comparable(reference[cells[0].key])

    def test_stale_results_from_previous_attempts_are_ignored(self, tmp_path):
        """A failure record from a superseded attempt must not consume a retry."""
        store = ResultsStore(tmp_path)
        queue = WorkQueue(store.root)
        queue.ensure()
        cell = grid(1)[0]
        entry = entry_from_task(("cell", cell, None))
        # A shard record from attempt 2 arrives while the merge loop still
        # tracks attempt 1 (e.g. the original owner reported after a steal
        # and re-enqueue): it must be skipped, not double-counted.
        queue.append_result(
            "ghost",
            {
                "fingerprint": entry["fingerprint"],
                "status": "failed",
                "error": "stale",
                "attempt": 2,
            },
        )
        queue.append_result(
            "live",
            {
                "fingerprint": entry["fingerprint"],
                "status": "failed",
                "error": "real",
                "worker_traceback": "tb",
                "attempt": 1,
            },
        )
        outcomes = list(
            merge_outcomes(
                queue,
                {entry["fingerprint"]: entry},
                retries=0,
                poll_interval=0.02,
                wait_timeout=10.0,
            )
        )
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].error == "real"


class TestDrainPending:
    def _seed_pending(self, store_root, cells) -> None:
        from repro.store.server import PENDING_FILENAME

        lines = [
            json.dumps(
                {
                    "schema": 1,
                    "cell_key": cell.key,
                    "fingerprint": cell.fingerprint(),
                    "config": cell.config_dict(),
                },
                sort_keys=True,
            )
            for cell in cells
        ]
        (store_root / PENDING_FILENAME).write_text("\n".join(lines) + "\n")

    def test_drains_pending_cells_into_the_store(self, tmp_path):
        from repro.store.server import PENDING_FILENAME

        cells = grid(3)
        store = ResultsStore(tmp_path)
        self._seed_pending(store.root, cells)
        report = drain_pending(store.root, workers=2, **SHORT)
        assert report.requested == 3
        assert report.cells_computed == 3
        assert report.pending_remaining == 0
        assert not (store.root / PENDING_FILENAME).exists()
        for cell in cells:
            assert store.get(cell.fingerprint()) is not None

    def test_drained_results_match_the_serial_reference(self, tmp_path):
        cells = grid(2)
        reference = SweepRunner(backend="serial").run(cells)
        store = ResultsStore(tmp_path)
        self._seed_pending(store.root, cells)
        drain_pending(store.root, workers=2, **SHORT)
        for cell in cells:
            stored = store.get(cell.fingerprint())["result"]
            expected = reference[cell.key].to_json_dict()
            stored.pop("elapsed_seconds"), expected.pop("elapsed_seconds")
            assert stored == expected

    def test_two_level_pending_cells_resolve_their_captures_first(self, tmp_path):
        cells = two_level_cells(2)
        store = ResultsStore(tmp_path)
        self._seed_pending(store.root, cells)
        report = drain_pending(store.root, workers=2, **SHORT)
        assert report.captures_computed == 1
        assert report.cells_computed == 2

    def test_already_cached_cells_are_skipped(self, tmp_path):
        cells = grid(2)
        store = ResultsStore(tmp_path)
        SweepRunner(backend="serial", store=store).run([cells[0]])
        self._seed_pending(store.root, cells)
        report = drain_pending(store.root, workers=1, **SHORT)
        assert report.already_cached == 1
        assert report.cells_computed == 1

    def test_tampered_fingerprint_is_refused_before_any_work(self, tmp_path):
        from repro.store.server import PENDING_FILENAME

        cells = grid(1)
        store = ResultsStore(tmp_path)
        line = {
            "schema": 1,
            "cell_key": cells[0].key,
            "fingerprint": "0" * 64,
            "config": cells[0].config_dict(),
        }
        (store.root / PENDING_FILENAME).write_text(json.dumps(line) + "\n")
        with pytest.raises(ConfigurationError) as excinfo:
            drain_pending(store.root, workers=1, **SHORT)
        assert "does not match" in str(excinfo.value)

    def test_malformed_pending_line_names_the_line_number(self, tmp_path):
        from repro.store.server import PENDING_FILENAME

        store = ResultsStore(tmp_path)
        (store.root / PENDING_FILENAME).write_text("not json\n")
        with pytest.raises(ConfigurationError) as excinfo:
            drain_pending(store.root, workers=1, **SHORT)
        assert ":1:" in str(excinfo.value)

    def test_empty_pending_file_is_a_noop(self, tmp_path):
        store = ResultsStore(tmp_path)
        report = drain_pending(store.root, workers=1, **SHORT)
        assert report.requested == 0
        assert report.cells_computed == 0
