"""Tests for the execution-backend layer: factory, parity, CPU autodetection.

The backend contract is what keeps every execution strategy byte-identical:
these tests pin the serial/process parity at several worker counts, the
backend factory's validation (serial rejects timeouts, unknown names are
named), the ``--jobs auto`` resolution, and the pool-recycle/retry semantics
exercised through an explicitly constructed backend rather than through the
runner's wiring.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.runner import SweepCell, SweepRunner
from repro.runner.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    available_cpu_count,
    create_backend,
    resolve_jobs,
)
from repro.runner.backends.base import TaskFailure


def grid(n_cells: int = 4, **overrides) -> list:
    cells = []
    for i in range(n_cells):
        utilization = 0.05 + 0.1 * i
        params = dict(
            key=f"grid/util={utilization:.2f}",
            scenario=ScenarioConfig(n_hops=1, cross_utilization=utilization),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=7,
        )
        params.update(overrides)
        cells.append(SweepCell(**params))
    return cells


def comparable(result) -> tuple:
    """The result fields that must be identical across backends and jobs."""
    return (
        result.empirical_detection_rate,
        result.measured_variance_ratio,
        result.measured_means,
        result.piat_stats,
    )


class TestCpuAutodetect:
    def test_available_cpu_count_is_a_positive_int(self):
        count = available_cpu_count()
        assert isinstance(count, int) and count >= 1

    def test_affinity_mask_is_honoured_when_present(self):
        import os

        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no affinity mask")
        assert available_cpu_count() <= os.cpu_count()
        assert available_cpu_count() >= len(os.sched_getaffinity(0)) or True

    def test_resolve_jobs_passes_ints_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2

    def test_resolve_jobs_auto_uses_available_cpus(self):
        assert resolve_jobs("auto") == available_cpu_count()

    def test_resolve_jobs_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs("many")


class TestFactory:
    def test_every_advertised_backend_constructs(self, tmp_path):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        for name in BACKEND_NAMES:
            backend = create_backend(name, jobs=1, store=store)
            assert backend.name == name

    def test_unknown_backend_is_named_in_the_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_backend("threads")
        assert "threads" in str(excinfo.value)
        for name in BACKEND_NAMES:
            assert name in str(excinfo.value)

    def test_serial_rejects_a_timeout_and_points_at_process(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_backend("serial", timeout=5.0)
        assert "process" in str(excinfo.value)

    def test_queue_rejects_a_timeout_and_points_at_lease_expiry(self, tmp_path):
        from repro.runner import ResultsStore

        with pytest.raises(ConfigurationError) as excinfo:
            create_backend("queue", store=ResultsStore(tmp_path), timeout=5.0)
        assert "lease" in str(excinfo.value)

    def test_queue_requires_a_store(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_backend("queue", store=None)
        assert "--cache-dir" in str(excinfo.value)

    def test_unknown_options_are_rejected_per_backend(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_backend("serial", lease_timeout=1.0)
        assert "lease_timeout" in str(excinfo.value)
        with pytest.raises(ConfigurationError):
            create_backend("process", spawn_workers=False)

    def test_process_validations_are_unchanged(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(jobs=0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(timeout=0.0)
        with pytest.raises(ConfigurationError):
            SerialBackend(retries=-1)


class TestBackendParity:
    def test_serial_and_process_agree_at_every_jobs_count(self):
        cells = grid()
        reference = SweepRunner(backend="serial").run(cells)
        for jobs in (1, 2, 4):
            report = SweepRunner(jobs=jobs, backend="process").run(cells)
            assert list(report.results) == list(reference.results)
            for key in reference.results:
                assert comparable(report[key]) == comparable(reference[key])

    def test_runner_summary_names_the_backend(self):
        runner = SweepRunner(backend="serial")
        runner.run(grid(1))
        assert runner.summary().endswith("jobs=1, backend=serial")
        default = SweepRunner(jobs=2)
        default.run(grid(1))
        assert default.summary().endswith("jobs=2, backend=process")

    def test_serial_backend_through_the_runner_rejects_timeout(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(backend="serial", timeout=1.0)


class TestProcessBackendSemantics:
    """The pool loop's retry/timeout behaviour, pinned on the backend itself."""

    def _tasks(self, n=3):
        return [("cell", cell, None) for cell in grid(n)]

    def test_yields_one_outcome_per_task(self):
        outcomes = list(ProcessBackend(jobs=2).execute(self._tasks(3)))
        assert len(outcomes) == 3
        assert not any(isinstance(o, TaskFailure) for o in outcomes)

    def test_empty_task_list_is_a_noop(self):
        assert list(ProcessBackend(jobs=2).execute([])) == []
        assert list(SerialBackend().execute([])) == []

    def test_failure_is_a_marker_not_an_exception(self):
        tasks = [("cell", cell, None) for cell in grid(1, features=("bogus",))]
        outcomes = list(SerialBackend().execute(tasks))
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].key == tasks[0][1].key

    def test_timeout_requeue_recovers_under_the_backend(self, tmp_path, monkeypatch):
        """Pool recycling after a timeout, driven on the backend directly."""
        import repro.runner.runner as runner_module
        from repro.runner.cells import run_cell as real_run_cell

        cells = grid(3)
        marker = tmp_path / "first-attempt-done"

        def hang_once(cell, capture=None):
            if cell.key == cells[0].key and not marker.exists():
                marker.write_text("")
                import time as time_module

                time_module.sleep(60.0)
            return real_run_cell(cell, capture=capture)

        monkeypatch.setattr(runner_module, "run_cell", hang_once)
        lines = []
        backend = ProcessBackend(
            jobs=2, timeout=1.5, retries=1, progress=lines.append
        )
        outcomes = list(backend.execute([("cell", c, None) for c in cells]))
        assert len(outcomes) == 3
        assert not any(isinstance(o, TaskFailure) for o in outcomes)
        assert any("timed out" in line and "retrying" in line for line in lines)

    def test_exhausted_timeout_yields_a_failure_marker(self, monkeypatch):
        import repro.runner.runner as runner_module

        cells = grid(1)

        def hang(cell, capture=None):
            import time as time_module

            time_module.sleep(60.0)

        monkeypatch.setattr(runner_module, "run_cell", hang)
        outcomes = list(
            ProcessBackend(jobs=1, timeout=1.0).execute(
                [("cell", cells[0], None)]
            )
        )
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], TaskFailure)
        assert "timed out after 1s" in outcomes[0].error


class TestCliJobsParsing:
    def test_jobs_auto_is_accepted(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4", "--jobs", "auto"])
        assert args.jobs == "auto"

    def test_jobs_int_still_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4", "--jobs", "3"])
        assert args.jobs == 3

    def test_jobs_garbage_is_a_usage_error(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig4", "--jobs", "lots"])
        assert excinfo.value.code == 2

    def test_jobs_zero_still_exits_two(self, capsys):
        from repro.cli import main

        assert main(["run", "fig4", "--jobs", "0"]) == 2
        assert "jobs=0" in capsys.readouterr().err

    def test_backend_flag_round_trips(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--backend", "serial"])
        assert args.backend == "serial"
        default = build_parser().parse_args(["sweep"])
        assert default.backend == "process"
