"""Tests for the sharded JSON-lines results store."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import SCHEMA_VERSION, ResultsStore


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "cache")


RESULT = {"empirical_detection_rate": {"variance": {"50": 0.9}}, "measured_variance_ratio": 1.5}


def legacy_record(fingerprint, result, schema=SCHEMA_VERSION):
    return json.dumps(
        {"schema": schema, "fingerprint": fingerprint, "config": {}, "result": result}
    )


def write_legacy(store, lines):
    store.root.mkdir(parents=True, exist_ok=True)
    store.legacy_path.write_text("\n".join(lines) + "\n")


class TestResultsStore:
    def test_miss_returns_none(self, store):
        assert store.get("deadbeef") is None
        assert "deadbeef" not in store
        assert len(store) == 0

    def test_put_then_get(self, store):
        store.put("abc", {"seed": 1}, RESULT)
        record = store.get("abc")
        assert record["result"] == RESULT
        assert record["config"] == {"seed": 1}
        assert record["schema"] == SCHEMA_VERSION
        assert "abc" in store and len(store) == 1

    def test_persists_across_instances(self, store):
        store.put("abc", {}, RESULT)
        reopened = ResultsStore(store.root)
        assert reopened.get("abc")["result"] == RESULT

    def test_layout_is_sharded_by_fingerprint_prefix(self, store):
        store.put("abcd01", {}, RESULT)
        store.put("abff02", {}, RESULT)
        store.put("c0ffee", {}, RESULT)
        assert store.shard_path("abcd01") == store.root / "ab" / "abcd01.jsonl"
        assert store.shard_path("abcd01").is_file()
        assert store.shard_path("abff02").is_file()
        assert (store.root / "c0" / "c0ffee.jsonl").is_file()
        record = json.loads(store.shard_path("abcd01").read_text())
        assert record["schema"] == SCHEMA_VERSION
        assert record["kind"] == "cell"

    def test_lookup_reads_only_one_shard(self, store):
        """Point lookups never load the whole store (the sharding payoff)."""
        store.put("abcd01", {}, RESULT)
        store.put("c0ffee", {}, RESULT)
        fresh = ResultsStore(store.root)
        # Corrupt an unrelated shard: the lookup must not even parse it.
        store.shard_path("c0ffee").write_text("not json at all")
        assert fresh.get("abcd01")["result"] == RESULT

    def test_last_record_wins_on_duplicate_fingerprints(self, store):
        store.put("abc", {}, {"measured_variance_ratio": 1.0})
        store.put("abc", {}, {"measured_variance_ratio": 2.0})
        reopened = ResultsStore(store.root)
        assert reopened.get("abc")["result"]["measured_variance_ratio"] == 2.0
        assert len(store.shard_path("abc").read_text().splitlines()) == 2

    def test_truncated_final_line_is_skipped(self, store):
        store.put("abc", {}, RESULT)
        with store.shard_path("abc").open("a") as handle:
            handle.write('{"schema": 1, "fingerprint": "abc", "resu')  # killed mid-write
        reopened = ResultsStore(store.root)
        assert reopened.get("abc")["result"] == RESULT

    def test_foreign_schema_records_are_ignored(self, store):
        path = store.shard_path("xyz9")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(legacy_record("xyz9", RESULT, schema=SCHEMA_VERSION + 1) + "\n")
        assert store.get("xyz9") is None

    def test_kinds_are_separate_namespaces(self, store):
        store.put("abc", {}, RESULT, kind="capture")
        assert store.get("abc") is None
        assert store.get("abc", kind="capture")["result"] == RESULT
        assert "abc" in store

    def test_rejects_pathological_fingerprints_on_put(self, store):
        for bad in ("", "ab", "a/../b", "a b"):
            with pytest.raises(ConfigurationError):
                store.put(bad, {}, RESULT)

    def test_root_that_is_a_file_is_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.touch()
        with pytest.raises(ConfigurationError) as excinfo:
            ResultsStore(target)
        assert "not a directory" in str(excinfo.value)

    def test_directory_created_lazily_on_first_put(self, tmp_path):
        store = ResultsStore(tmp_path / "nested" / "cache")
        assert not store.root.exists()  # reads never create the directory
        store.put("abc", {}, RESULT)
        assert store.shard_path("abc").exists()


class TestLegacyFlatFile:
    """Stores written before sharding stay transparently readable."""

    def test_legacy_records_are_served(self, store):
        write_legacy(store, [legacy_record("abc", RESULT)])
        assert store.get("abc")["result"] == RESULT
        assert "abc" in store
        assert len(store) == 1

    def test_shard_takes_precedence_over_legacy(self, store):
        write_legacy(store, [legacy_record("abc", {"measured_variance_ratio": 1.0})])
        store.put("abc", {}, {"measured_variance_ratio": 2.0})
        reopened = ResultsStore(store.root)
        assert reopened.get("abc")["result"]["measured_variance_ratio"] == 2.0
        assert len(reopened) == 1

    def test_legacy_truncated_line_is_skipped(self, store):
        write_legacy(store, [legacy_record("abc", RESULT), '{"schema": 1, "fing'])
        assert ResultsStore(store.root).get("abc")["result"] == RESULT

    def test_mixed_layout_lists_every_fingerprint_once(self, store):
        write_legacy(store, [legacy_record("abc", RESULT), legacy_record("old1", RESULT)])
        store.put("abc", {}, RESULT)
        store.put("new1", {}, RESULT)
        assert sorted(store.fingerprints()) == ["abc", "new1", "old1"]


class TestCompaction:
    def test_compact_drops_superseded_shard_records(self, store):
        store.put("abc", {}, {"measured_variance_ratio": 1.0})
        store.put("abc", {}, {"measured_variance_ratio": 2.0})
        stats = store.compact()
        assert stats.superseded_dropped == 1
        assert len(store.shard_path("abc").read_text().splitlines()) == 1
        assert ResultsStore(store.root).get("abc")["result"]["measured_variance_ratio"] == 2.0

    def test_compact_migrates_legacy_into_shards(self, store):
        write_legacy(
            store,
            [
                legacy_record("old1", {"measured_variance_ratio": 1.0}),
                legacy_record("old1", {"measured_variance_ratio": 3.0}),
                legacy_record("old2", RESULT),
            ],
        )
        store.put("new1", {}, RESULT)
        stats = store.compact()
        assert stats.legacy_migrated == 2
        assert stats.superseded_dropped == 1  # the shadowed old1 record
        assert not store.legacy_path.exists()
        reopened = ResultsStore(store.root)
        assert reopened.get("old1")["result"]["measured_variance_ratio"] == 3.0
        assert reopened.get("old2")["result"] == RESULT
        assert reopened.get("new1")["result"] == RESULT

    def test_compact_prefers_shard_over_legacy_duplicate(self, store):
        write_legacy(store, [legacy_record("abc", {"measured_variance_ratio": 1.0})])
        store.put("abc", {}, {"measured_variance_ratio": 2.0})
        store.compact()
        assert not store.legacy_path.exists()
        assert ResultsStore(store.root).get("abc")["result"]["measured_variance_ratio"] == 2.0

    def test_compact_on_empty_store_is_a_noop(self, store):
        stats = store.compact()
        assert (stats.records_kept, stats.superseded_dropped, stats.legacy_migrated) == (0, 0, 0)

    def test_compact_leaves_foreign_schema_shards_untouched(self, store):
        """A store written by a different SCHEMA_VERSION is not ours to drop."""
        foreign = store.shard_path("abc123")
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign_line = legacy_record("abc123", RESULT, schema=SCHEMA_VERSION + 1) + "\n"
        foreign.write_text(foreign_line)
        write_legacy(
            store,
            [legacy_record("old1", RESULT), legacy_record("xyz1", RESULT, schema=99)],
        )
        stats = store.compact()
        assert foreign.read_text() == foreign_line  # byte-identical
        assert store.legacy_path.exists()  # foreign legacy line keeps the file
        assert stats.legacy_migrated == 1
        assert ResultsStore(store.root).get("old1")["result"] == RESULT

    def test_compact_preserves_capture_kind(self, store):
        store.put("abc", {}, RESULT, kind="capture")
        store.put("abc", {}, RESULT, kind="capture")
        store.compact()
        reopened = ResultsStore(store.root)
        assert reopened.get("abc", kind="capture") is not None
        assert reopened.get("abc") is None


class TestStoreStats:
    """``ResultsStore.stats()`` — the counters behind ``repro cache stats``."""

    def test_empty_store(self, store):
        stats = store.stats()
        assert (stats.records, stats.shard_files, stats.legacy_records) == (0, 0, 0)
        assert stats.total_bytes == 0
        assert stats.schema_versions == ()
        assert "(empty store)" in str(stats)

    def test_counts_winners_kinds_and_superseded(self, store):
        store.put("aaa1", {}, RESULT)
        store.put("aaa1", {}, RESULT)  # superseded duplicate in the same shard
        store.put("bbb2", {}, RESULT, kind="capture")
        stats = store.stats()
        assert stats.records == 2
        assert (stats.cells, stats.captures) == (1, 1)
        assert stats.shard_files == 2
        assert stats.superseded == 1
        assert stats.total_bytes > 0
        assert stats.schema_versions == (SCHEMA_VERSION,)

    def test_counts_legacy_records_and_shadowing(self, store):
        write_legacy(store, [legacy_record("old1", RESULT), legacy_record("aaa1", RESULT)])
        store.put("aaa1", {}, RESULT)  # shard record shadows the legacy one
        stats = store.stats()
        assert stats.records == 2  # old1 + aaa1
        assert stats.legacy_records == 2
        assert stats.superseded == 1

    def test_reports_foreign_schema_versions(self, store):
        """Stats must surface versions this code cannot serve (get() skips them)."""
        store.put("aaa1", {}, RESULT)
        foreign = store.shard_path("ccc3")
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign.write_text(legacy_record("ccc3", RESULT, schema=SCHEMA_VERSION + 1) + "\n")
        stats = store.stats()
        assert stats.schema_versions == (SCHEMA_VERSION, SCHEMA_VERSION + 1)
        assert str(SCHEMA_VERSION + 1) in str(stats)

    def test_reports_non_integer_schema_versions(self, store):
        """Foreign tools may write string/float versions; they must not vanish."""
        store.put("aaa1", {}, RESULT)
        foreign = store.shard_path("ddd4")
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign.write_text(legacy_record("ddd4", RESULT, schema="2.experimental") + "\n")
        stats = store.stats()
        assert set(stats.schema_versions) == {SCHEMA_VERSION, "2.experimental"}
        assert "2.experimental" in str(stats)


class TestDoctoredShards:
    """Hardening: hand-edited or foreign-tool shard lines must degrade to skips."""

    def test_record_without_fingerprint_does_not_break_the_lookup(self, store):
        store.put("abcd01", {"seed": 1}, RESULT)
        doctored = json.dumps(
            {"schema": SCHEMA_VERSION, "kind": "cell", "config": {}, "result": {"x": 1}}
        )
        with store.shard_path("abcd01").open("a", encoding="utf-8") as handle:
            handle.write(doctored + "\n")
        reopened = ResultsStore(store.root)
        # The keyless line is skipped; the good record still wins — no KeyError.
        assert reopened.get("abcd01")["result"] == RESULT
        assert list(reopened.fingerprints()) == ["abcd01"]

    def test_non_string_fingerprint_is_skipped(self, store):
        store.put("abcd01", {}, RESULT)
        doctored = json.dumps(
            {"schema": SCHEMA_VERSION, "fingerprint": 12345, "config": {}, "result": {"x": 1}}
        )
        with store.shard_path("abcd01").open("a", encoding="utf-8") as handle:
            handle.write(doctored + "\n")
        assert ResultsStore(store.root).get("abcd01")["result"] == RESULT


class TestKindFilterPrecedence:
    """Pin the audited kind-filter semantics: precedence first, kind second.

    The winning record (shards over legacy, last line in a file) is the
    truth about a fingerprint; a kind mismatch on it is a miss, never a
    fallback to an older same-kind record.
    """

    def test_wrong_kind_shard_winner_hides_an_older_shard_record(self, store):
        store.put("abc", {}, RESULT, kind="cell")
        store.put("abc", {}, RESULT, kind="capture")  # last record wins
        reopened = ResultsStore(store.root)
        assert reopened.get("abc", kind="cell") is None
        assert reopened.get("abc", kind="capture") is not None

    def test_wrong_kind_shard_winner_hides_a_legacy_cell_record(self, store):
        write_legacy(store, [legacy_record("abc", RESULT)])  # legacy = cell
        store.put("abc", {}, RESULT, kind="capture")
        reopened = ResultsStore(store.root)
        # The shard's capture record shadows the fingerprint wholesale: no
        # fall-through to the legacy flat file for the requested kind.
        assert reopened.get("abc", kind="cell") is None
        assert reopened.get("abc", kind="capture") is not None
        # Without the shard the legacy record would have answered.
        store.shard_path("abc").unlink()
        assert ResultsStore(store.root).get("abc", kind="cell") is not None
