"""Tests for the JSON-lines results store."""

from __future__ import annotations

import json

import pytest

from repro.runner import SCHEMA_VERSION, ResultsStore


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "cache")


RESULT = {"empirical_detection_rate": {"variance": {"50": 0.9}}, "measured_variance_ratio": 1.5}


class TestResultsStore:
    def test_miss_returns_none(self, store):
        assert store.get("deadbeef") is None
        assert "deadbeef" not in store
        assert len(store) == 0

    def test_put_then_get(self, store):
        store.put("abc", {"seed": 1}, RESULT)
        record = store.get("abc")
        assert record["result"] == RESULT
        assert record["config"] == {"seed": 1}
        assert record["schema"] == SCHEMA_VERSION
        assert "abc" in store and len(store) == 1

    def test_persists_across_instances(self, store):
        store.put("abc", {}, RESULT)
        reopened = ResultsStore(store.root)
        assert reopened.get("abc")["result"] == RESULT

    def test_layout_is_one_jsonl_file(self, store):
        store.put("abc", {}, RESULT)
        store.put("def", {}, RESULT)
        assert store.path == store.root / "results.jsonl"
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == SCHEMA_VERSION for line in lines)

    def test_last_record_wins_on_duplicate_fingerprints(self, store):
        store.put("abc", {}, {"measured_variance_ratio": 1.0})
        store.put("abc", {}, {"measured_variance_ratio": 2.0})
        assert store.get("abc")["result"]["measured_variance_ratio"] == 2.0

    def test_truncated_final_line_is_skipped(self, store):
        store.put("abc", {}, RESULT)
        with store.path.open("a") as handle:
            handle.write('{"schema": 1, "fingerprint": "half')  # killed mid-write
        reopened = ResultsStore(store.root)
        assert len(reopened) == 1
        assert reopened.get("abc") is not None

    def test_foreign_schema_records_are_ignored(self, store):
        store.put("abc", {}, RESULT)
        with store.path.open("a") as handle:
            handle.write(
                json.dumps(
                    {"schema": SCHEMA_VERSION + 1, "fingerprint": "xyz", "result": {}}
                )
                + "\n"
            )
        reopened = ResultsStore(store.root)
        assert reopened.get("xyz") is None

    def test_root_that_is_a_file_is_rejected(self, tmp_path):
        from repro.exceptions import ConfigurationError

        target = tmp_path / "not-a-dir"
        target.touch()
        with pytest.raises(ConfigurationError) as excinfo:
            ResultsStore(target)
        assert "not a directory" in str(excinfo.value)

    def test_directory_created_lazily_on_first_put(self, tmp_path):
        store = ResultsStore(tmp_path / "nested" / "cache")
        assert not store.root.exists()  # reads never create the directory
        store.put("abc", {}, RESULT)
        assert store.path.exists()
