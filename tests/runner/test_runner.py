"""Tests for the parallel sweep runner: determinism, caching, failure handling."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SweepError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.runner import ResultsStore, SweepCell, SweepRunner


def grid(n_cells: int = 4, **overrides) -> list:
    """A tiny analytic grid: one cell per cross-traffic utilization."""
    cells = []
    for i in range(n_cells):
        utilization = 0.05 + 0.1 * i
        params = dict(
            key=f"grid/util={utilization:.2f}",
            scenario=ScenarioConfig(n_hops=1, cross_utilization=utilization),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=7,
        )
        params.update(overrides)
        cells.append(SweepCell(**params))
    return cells


def comparable(result) -> tuple:
    """The result fields that must be identical across jobs counts and caches."""
    return (
        result.empirical_detection_rate,
        result.measured_variance_ratio,
        result.measured_means,
        result.piat_stats,
    )


class TestDeterminism:
    def test_results_are_bit_identical_across_jobs_counts(self):
        cells = grid()
        serial = SweepRunner(jobs=1).run(cells)
        parallel = SweepRunner(jobs=4).run(cells)
        assert list(serial.results) == list(parallel.results)
        for key in serial.results:
            assert comparable(serial[key]) == comparable(parallel[key])

    def test_results_keyed_and_ordered_by_input_cells(self):
        cells = grid()
        report = SweepRunner(jobs=2).run(cells)
        assert list(report.results) == [cell.key for cell in cells]


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        cells = grid()
        cold_runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        cold = cold_runner.run(cells)
        assert (cold.hits, cold.misses) == (0, 4)
        assert all(not r.from_cache for r in cold.results.values())

        warm_runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        warm = warm_runner.run(cells)
        assert (warm.hits, warm.misses) == (4, 0)
        assert all(r.from_cache for r in warm.results.values())
        for key in cold.results:
            assert comparable(cold[key]) == comparable(warm[key])

    def test_partial_overlap_simulates_only_new_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        SweepRunner(store=store).run(grid(2))
        report = SweepRunner(store=store).run(grid(4))
        assert (report.hits, report.misses) == (2, 2)

    def test_changing_the_seed_misses_the_cache(self, tmp_path):
        store = ResultsStore(tmp_path)
        SweepRunner(store=store).run(grid(2))
        report = SweepRunner(store=store).run(grid(2, seed=8))
        assert (report.hits, report.misses) == (0, 2)

    def test_without_store_every_run_simulates(self):
        runner = SweepRunner()
        runner.run(grid(2))
        runner.run(grid(2))
        assert runner.cache_hits == 0
        assert runner.cache_misses == 4

    def test_identical_configs_are_deduplicated_within_one_sweep(self):
        cells = grid(2)
        twin = SweepCell(
            key="grid/twin",
            scenario=cells[0].scenario,
            sample_sizes=cells[0].sample_sizes,
            trials=cells[0].trials,
            mode=cells[0].mode,
            seed=cells[0].seed,
        )
        report = SweepRunner().run(cells + [twin])
        assert report.misses == 2  # the twin rides along with its original
        assert report.hits == 0  # no store: nothing is a cache hit
        assert report.deduplicated == 1
        assert "1 deduplicated" in report.summary()
        assert comparable(report["grid/twin"]) == comparable(report[cells[0].key])

    def test_summary_accumulates_across_runs(self, tmp_path):
        runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        runner.run(grid(2))
        runner.run(grid(2))
        assert "4 cells" in runner.summary()
        assert "2 simulated" in runner.summary()
        assert "2 cache hits" in runner.summary()


class TestFailurePropagation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_raises_sweep_error_naming_the_cell(self, jobs):
        cells = grid(2)
        # Passes construction but raises inside the worker at feature lookup.
        cells.append(
            SweepCell(
                key="grid/poison",
                scenario=ScenarioConfig(),
                sample_sizes=(50,),
                trials=4,
                mode=CollectionMode.ANALYTIC,
                seed=7,
                features=("variance", "bogus"),
            )
        )
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=jobs).run(cells)
        message = str(excinfo.value)
        assert "grid/poison" in message
        assert "bogus" in message
        assert "worker traceback" in message

    def test_nothing_is_cached_from_a_failed_sweep_cell(self, tmp_path):
        store = ResultsStore(tmp_path)
        poison = SweepCell(
            key="poison",
            scenario=ScenarioConfig(),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            features=("bogus",),
        )
        with pytest.raises(SweepError):
            SweepRunner(store=store).run([poison])
        assert poison.fingerprint() not in store


class TestValidation:
    def test_rejects_duplicate_cell_keys(self):
        cells = grid(1) + grid(1)
        with pytest.raises(ConfigurationError) as excinfo:
            SweepRunner().run(cells)
        assert "duplicate" in str(excinfo.value)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=0)

    def test_empty_grid_is_a_noop(self):
        report = SweepRunner().run([])
        assert report.results == {}
        assert (report.hits, report.misses) == (0, 0)
