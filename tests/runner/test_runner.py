"""Tests for the parallel sweep runner: determinism, caching, failure handling."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SweepError
from repro.experiments import CollectionMode, ScenarioConfig
from repro.runner import ResultsStore, SweepCell, SweepRunner


def grid(n_cells: int = 4, **overrides) -> list:
    """A tiny analytic grid: one cell per cross-traffic utilization."""
    cells = []
    for i in range(n_cells):
        utilization = 0.05 + 0.1 * i
        params = dict(
            key=f"grid/util={utilization:.2f}",
            scenario=ScenarioConfig(n_hops=1, cross_utilization=utilization),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=7,
        )
        params.update(overrides)
        cells.append(SweepCell(**params))
    return cells


def comparable(result) -> tuple:
    """The result fields that must be identical across jobs counts and caches."""
    return (
        result.empirical_detection_rate,
        result.measured_variance_ratio,
        result.measured_means,
        result.piat_stats,
    )


class TestDeterminism:
    def test_results_are_bit_identical_across_jobs_counts(self):
        cells = grid()
        serial = SweepRunner(jobs=1).run(cells)
        parallel = SweepRunner(jobs=4).run(cells)
        assert list(serial.results) == list(parallel.results)
        for key in serial.results:
            assert comparable(serial[key]) == comparable(parallel[key])

    def test_results_keyed_and_ordered_by_input_cells(self):
        cells = grid()
        report = SweepRunner(jobs=2).run(cells)
        assert list(report.results) == [cell.key for cell in cells]


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        cells = grid()
        cold_runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        cold = cold_runner.run(cells)
        assert (cold.hits, cold.misses) == (0, 4)
        assert all(not r.from_cache for r in cold.results.values())

        warm_runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        warm = warm_runner.run(cells)
        assert (warm.hits, warm.misses) == (4, 0)
        assert all(r.from_cache for r in warm.results.values())
        for key in cold.results:
            assert comparable(cold[key]) == comparable(warm[key])

    def test_partial_overlap_simulates_only_new_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        SweepRunner(store=store).run(grid(2))
        report = SweepRunner(store=store).run(grid(4))
        assert (report.hits, report.misses) == (2, 2)

    def test_changing_the_seed_misses_the_cache(self, tmp_path):
        store = ResultsStore(tmp_path)
        SweepRunner(store=store).run(grid(2))
        report = SweepRunner(store=store).run(grid(2, seed=8))
        assert (report.hits, report.misses) == (0, 2)

    def test_without_store_every_run_simulates(self):
        runner = SweepRunner()
        runner.run(grid(2))
        runner.run(grid(2))
        assert runner.cache_hits == 0
        assert runner.cache_misses == 4

    def test_identical_configs_are_deduplicated_within_one_sweep(self):
        cells = grid(2)
        twin = SweepCell(
            key="grid/twin",
            scenario=cells[0].scenario,
            sample_sizes=cells[0].sample_sizes,
            trials=cells[0].trials,
            mode=cells[0].mode,
            seed=cells[0].seed,
        )
        report = SweepRunner().run(cells + [twin])
        assert report.misses == 2  # the twin rides along with its original
        assert report.hits == 0  # no store: nothing is a cache hit
        assert report.deduplicated == 1
        assert "1 deduplicated" in report.summary()
        assert comparable(report["grid/twin"]) == comparable(report[cells[0].key])

    def test_summary_accumulates_across_runs(self, tmp_path):
        runner = SweepRunner(jobs=2, store=ResultsStore(tmp_path))
        runner.run(grid(2))
        runner.run(grid(2))
        assert "4 cells" in runner.summary()
        assert "2 simulated" in runner.summary()
        assert "2 cache hits" in runner.summary()


class TestFailurePropagation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_raises_sweep_error_naming_the_cell(self, jobs):
        cells = grid(2)
        # Passes construction but raises inside the worker at feature lookup.
        cells.append(
            SweepCell(
                key="grid/poison",
                scenario=ScenarioConfig(),
                sample_sizes=(50,),
                trials=4,
                mode=CollectionMode.ANALYTIC,
                seed=7,
                features=("variance", "bogus"),
            )
        )
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=jobs).run(cells)
        message = str(excinfo.value)
        assert "grid/poison" in message
        assert "bogus" in message
        assert "worker traceback" in message

    def test_nothing_is_cached_from_a_failed_sweep_cell(self, tmp_path):
        store = ResultsStore(tmp_path)
        poison = SweepCell(
            key="poison",
            scenario=ScenarioConfig(),
            sample_sizes=(50,),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            features=("bogus",),
        )
        with pytest.raises(SweepError):
            SweepRunner(store=store).run([poison])
        assert poison.fingerprint() not in store


class TestRetries:
    def _flaky_run_cell(self, tmp_path, fail_times):
        """A run_cell wrapper that fails each cell's first ``fail_times`` attempts.

        Attempt counters live on disk, one file per cell, so the behaviour is
        identical — and race-free — whether the cell runs inline or in a
        forked pool worker.
        """
        from repro.runner.cells import run_cell as real_run_cell

        def counter_for(cell):
            return tmp_path / f"attempts-{cell.fingerprint()[:12]}"

        def flaky(cell, capture=None):
            counter = counter_for(cell)
            attempts = int(counter.read_text()) if counter.exists() else 0
            counter.write_text(str(attempts + 1))
            if attempts < fail_times:
                raise RuntimeError(f"transient failure #{attempts + 1}")
            return real_run_cell(cell, capture=capture)

        return flaky, counter_for

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failures_are_retried(self, tmp_path, monkeypatch, jobs):
        import repro.runner.runner as runner_module

        flaky, counter_for = self._flaky_run_cell(tmp_path, fail_times=1)
        monkeypatch.setattr(runner_module, "run_cell", flaky)
        lines = []
        cells = grid(2)
        report = SweepRunner(jobs=jobs, retries=2, progress=lines.append).run(cells)
        assert len(report.results) == 2
        for cell in cells:
            assert int(counter_for(cell).read_text()) == 2  # 1 failure + 1 success
        assert any("retrying" in line for line in lines)

    def test_exhausted_retries_abort_with_the_cell_key(self, tmp_path, monkeypatch):
        import repro.runner.runner as runner_module

        flaky, _ = self._flaky_run_cell(tmp_path, fail_times=100)
        monkeypatch.setattr(runner_module, "run_cell", flaky)
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(retries=1).run(grid(1))
        message = str(excinfo.value)
        assert "grid/util=0.05" in message
        assert "transient failure" in message

    def test_zero_retries_keeps_the_historical_fail_fast_behaviour(self):
        cells = grid(1, features=("bogus",))
        with pytest.raises(SweepError):
            SweepRunner().run(cells)


class TestTimeouts:
    @staticmethod
    def _sleepy_run_cell(sleep_keys, tmp_path=None):
        """run_cell that hangs for selected keys (until a marker appears)."""
        import time as time_module

        from repro.runner.cells import run_cell as real_run_cell

        def sleepy(cell, capture=None):
            if cell.key in sleep_keys:
                if tmp_path is not None and (tmp_path / "pass").exists():
                    return real_run_cell(cell, capture=capture)
                time_module.sleep(60.0)
            return real_run_cell(cell, capture=capture)

        return sleepy

    def test_rejects_bad_timeout_and_retries(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(timeout=0.0)
        with pytest.raises(ConfigurationError):
            SweepRunner(retries=-1)

    def test_timed_out_cell_aborts_naming_the_cell_key(self, monkeypatch):
        import repro.runner.runner as runner_module

        cells = grid(3)
        monkeypatch.setattr(
            runner_module, "run_cell", self._sleepy_run_cell({cells[1].key})
        )
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=2, timeout=1.0).run(cells)
        message = str(excinfo.value)
        assert cells[1].key in message
        assert "timed out after 1s" in message

    def test_innocent_cells_survive_a_pool_recycle(self, tmp_path, monkeypatch):
        """A timeout tears the pool down; requeued bystanders still complete."""
        import repro.runner.runner as runner_module

        cells = grid(4)
        monkeypatch.setattr(
            runner_module,
            "run_cell",
            self._sleepy_run_cell({cells[0].key}, tmp_path=tmp_path),
        )
        # First attempt of cell 0 hangs; the marker lets its retry pass.
        (tmp_path / "pass").write_text("")
        report = SweepRunner(jobs=2, timeout=30.0).run(cells)
        assert len(report.results) == 4

    def test_timeout_retry_recovers_a_hung_cell(self, tmp_path, monkeypatch):
        import repro.runner.runner as runner_module

        cells = grid(2)

        from repro.runner.cells import run_cell as real_run_cell

        marker = tmp_path / "first-attempt-done"

        def hang_once(cell, capture=None):
            if cell.key == cells[0].key and not marker.exists():
                marker.write_text("")
                import time as time_module

                time_module.sleep(60.0)
            return real_run_cell(cell, capture=capture)

        monkeypatch.setattr(runner_module, "run_cell", hang_once)
        lines = []
        report = SweepRunner(
            jobs=2, timeout=1.5, retries=1, progress=lines.append
        ).run(cells)
        assert len(report.results) == 2
        assert any("timed out" in line and "retrying" in line for line in lines)

    def test_timeout_with_jobs_one_still_enforced(self, monkeypatch):
        """timeout forces a pool even at jobs=1 (an inline cell can't be killed)."""
        import repro.runner.runner as runner_module

        cells = grid(1)
        monkeypatch.setattr(runner_module, "run_cell", self._sleepy_run_cell({cells[0].key}))
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=1, timeout=1.0).run(cells)
        assert "timed out" in str(excinfo.value)


class TestValidation:
    def test_rejects_duplicate_cell_keys(self):
        cells = grid(1) + grid(1)
        with pytest.raises(ConfigurationError) as excinfo:
            SweepRunner().run(cells)
        assert "duplicate" in str(excinfo.value)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=0)

    def test_empty_grid_is_a_noop(self):
        report = SweepRunner().run([])
        assert report.results == {}
        assert (report.hits, report.misses) == (0, 0)
