"""Tests for traffic sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.sim import Simulator
from repro.traffic import (
    CBRSource,
    MMPPSource,
    OnOffSource,
    PacketKind,
    PiecewiseConstantSchedule,
    PoissonSource,
    TraceReplaySource,
)


class Collector:
    """Sink recording every packet it receives."""

    def __init__(self):
        self.packets = []

    def __call__(self, packet):
        self.packets.append(packet)

    @property
    def times(self):
        return np.array([p.created_at for p in self.packets])


class TestCBRSource:
    def test_emits_at_exact_rate(self, simulator, rng):
        sink = Collector()
        source = CBRSource(simulator, sink, rate=10.0, rng=rng)
        source.start(initial_delay=0.1)
        simulator.run(until=10.0)
        assert len(sink.packets) == 100
        gaps = np.diff(sink.times)
        assert np.allclose(gaps, 0.1)

    def test_packets_carry_flow_and_kind(self, simulator, rng):
        sink = Collector()
        source = CBRSource(
            simulator, sink, rate=5.0, rng=rng, flow_id="cross-1", kind=PacketKind.CROSS
        )
        source.start()
        simulator.run(until=1.0)
        assert sink.packets
        assert all(p.flow_id == "cross-1" for p in sink.packets)
        assert all(p.kind is PacketKind.CROSS for p in sink.packets)

    def test_stop_halts_emission(self, simulator, rng):
        sink = Collector()
        source = CBRSource(simulator, sink, rate=100.0, rng=rng)
        source.start()
        simulator.run(until=0.5)
        count = len(sink.packets)
        source.stop()
        simulator.run(until=2.0)
        assert len(sink.packets) == count
        assert not source.active

    def test_follows_piecewise_schedule(self, simulator, rng):
        schedule = PiecewiseConstantSchedule([(0.0, 10.0), (10.0, 40.0)])
        sink = Collector()
        source = CBRSource(simulator, sink, rate=schedule, rng=rng)
        source.start()
        simulator.run(until=20.0)
        first_half = np.sum(sink.times < 10.0)
        second_half = np.sum(sink.times >= 10.0)
        assert first_half == pytest.approx(100, abs=2)
        assert second_half == pytest.approx(400, abs=3)

    def test_zero_rate_idles_then_resumes(self, simulator, rng):
        schedule = PiecewiseConstantSchedule([(0.0, 0.0), (5.0, 10.0)])
        sink = Collector()
        source = CBRSource(simulator, sink, rate=schedule, rng=rng, idle_poll_interval=0.05)
        source.start()
        simulator.run(until=10.0)
        assert np.all(sink.times >= 5.0)
        assert len(sink.packets) == pytest.approx(50, abs=2)

    def test_non_callable_sink_rejected(self, simulator, rng):
        with pytest.raises(TrafficError):
            CBRSource(simulator, "not-a-sink", rate=1.0, rng=rng)

    def test_packet_counter(self, simulator, rng):
        sink = Collector()
        source = CBRSource(simulator, sink, rate=50.0, rng=rng)
        source.start()
        simulator.run(until=1.0)
        assert source.packets_emitted == len(sink.packets)


class TestPoissonSource:
    def test_mean_rate_matches_target(self, simulator, rng):
        sink = Collector()
        source = PoissonSource(simulator, sink, rate=200.0, rng=rng)
        source.start()
        simulator.run(until=50.0)
        observed_rate = len(sink.packets) / 50.0
        assert observed_rate == pytest.approx(200.0, rel=0.05)

    def test_gaps_are_exponential_like(self, simulator, rng):
        sink = Collector()
        source = PoissonSource(simulator, sink, rate=100.0, rng=rng)
        source.start()
        simulator.run(until=100.0)
        gaps = np.diff(sink.times)
        # Exponential distribution: std ~= mean.
        assert np.std(gaps) == pytest.approx(np.mean(gaps), rel=0.1)

    def test_zero_rate_emits_nothing(self, simulator, rng):
        sink = Collector()
        source = PoissonSource(simulator, sink, rate=0.0, rng=rng, idle_poll_interval=0.1)
        source.start()
        simulator.run(until=5.0)
        assert len(sink.packets) == 0


class TestOnOffSource:
    def test_average_rate_reflects_duty_cycle(self, simulator, rng):
        sink = Collector()
        source = OnOffSource(
            simulator,
            sink,
            rate=400.0,
            mean_on_time=1.0,
            mean_off_time=1.0,
            rng=rng,
        )
        source.start()
        simulator.run(until=200.0)
        observed = len(sink.packets) / 200.0
        assert observed == pytest.approx(source.average_rate_pps, rel=0.2)
        assert source.average_rate_pps == pytest.approx(200.0)

    def test_validation(self, simulator, rng):
        with pytest.raises(TrafficError):
            OnOffSource(simulator, lambda p: None, 10.0, mean_on_time=0.0, mean_off_time=1.0, rng=rng)


class TestMMPPSource:
    def test_long_run_rate_between_state_rates(self, simulator, rng):
        sink = Collector()
        source = MMPPSource(
            simulator,
            sink,
            state_rates_pps=[50.0, 400.0],
            mean_holding_times=[1.0, 1.0],
            rng=rng,
        )
        source.start()
        simulator.run(until=100.0)
        observed = len(sink.packets) / 100.0
        assert 50.0 < observed < 400.0

    def test_state_advances(self, simulator, rng):
        source = MMPPSource(
            simulator,
            lambda p: None,
            state_rates_pps=[100.0, 100.0, 100.0],
            mean_holding_times=[0.1, 0.1, 0.1],
            rng=rng,
        )
        source.start()
        simulator.run(until=5.0)
        assert source.state in (0, 1, 2)

    def test_validation(self, simulator, rng):
        with pytest.raises(TrafficError):
            MMPPSource(simulator, lambda p: None, [10.0], [1.0], rng=rng)
        with pytest.raises(TrafficError):
            MMPPSource(simulator, lambda p: None, [10.0, -1.0], [1.0, 1.0], rng=rng)


class TestTraceReplaySource:
    def test_replays_exact_timestamps(self, simulator):
        sink = Collector()
        stamps = [0.5, 1.0, 1.25, 4.0]
        source = TraceReplaySource(simulator, sink, stamps)
        source.start()
        simulator.run()
        assert np.allclose(sink.times, stamps)
        assert source.packets_emitted == 4

    def test_rejects_decreasing_timestamps(self, simulator):
        with pytest.raises(TrafficError):
            TraceReplaySource(simulator, lambda p: None, [1.0, 0.5])

    def test_rejects_timestamps_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(TrafficError):
            TraceReplaySource(sim, lambda p: None, [1.0, 2.0])

    def test_cannot_start_twice(self, simulator):
        source = TraceReplaySource(simulator, lambda p: None, [1.0])
        source.start()
        with pytest.raises(TrafficError):
            source.start()
