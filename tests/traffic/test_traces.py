"""Tests for trace generation and serialisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrafficError
from repro.traffic import generate_piat_trace, load_trace, save_trace, trace_from_timestamps
from repro.traffic.traces import Trace


class TestTrace:
    def test_intervals_and_duration(self):
        trace = trace_from_timestamps([0.0, 0.01, 0.03], label="x")
        assert np.allclose(trace.intervals(), [0.01, 0.02])
        assert trace.duration() == pytest.approx(0.03)
        assert trace.metadata["label"] == "x"

    def test_mean_rate(self):
        trace = trace_from_timestamps(np.arange(0.0, 1.001, 0.01))
        assert trace.mean_rate_pps() == pytest.approx(100.0, rel=1e-6)

    def test_short_trace_rate_raises(self):
        with pytest.raises(TrafficError):
            trace_from_timestamps([1.0]).mean_rate_pps()

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TrafficError):
            Trace(np.array([1.0, 0.5]))

    def test_multidimensional_rejected(self):
        with pytest.raises(TrafficError):
            Trace(np.zeros((2, 2)))

    def test_len(self):
        assert len(trace_from_timestamps([0.0, 1.0, 2.0])) == 3


class TestGeneratePiatTrace:
    def test_respects_requested_size_and_mean(self, rng):
        trace = generate_piat_trace(2001, mean_interval=0.01, jitter_std=1e-4, rng=rng)
        assert len(trace) == 2001
        assert np.mean(trace.intervals()) == pytest.approx(0.01, rel=0.01)

    def test_zero_jitter_is_perfectly_periodic(self, rng):
        trace = generate_piat_trace(100, mean_interval=0.01, jitter_std=0.0, rng=rng)
        assert np.allclose(trace.intervals(), 0.01)

    def test_intervals_never_negative(self, rng):
        trace = generate_piat_trace(5000, mean_interval=0.001, jitter_std=0.01, rng=rng)
        assert np.all(trace.intervals() > 0.0)

    def test_metadata_recorded(self, rng):
        trace = generate_piat_trace(10, 0.01, 1e-5, rng=rng, rate_label="high")
        assert trace.metadata["rate_label"] == "high"
        assert trace.metadata["mean_interval"] == pytest.approx(0.01)

    def test_validation(self, rng):
        with pytest.raises(TrafficError):
            generate_piat_trace(1, 0.01, 0.0, rng=rng)
        with pytest.raises(TrafficError):
            generate_piat_trace(10, 0.0, 0.0, rng=rng)
        with pytest.raises(TrafficError):
            generate_piat_trace(10, 0.01, -1.0, rng=rng)

    def test_reproducible_with_seeded_rng(self):
        a = generate_piat_trace(100, 0.01, 1e-4, rng=np.random.default_rng(5))
        b = generate_piat_trace(100, 0.01, 1e-4, rng=np.random.default_rng(5))
        assert np.array_equal(a.timestamps, b.timestamps)

    @given(n=st.integers(min_value=2, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_timestamps_strictly_increasing(self, n):
        trace = generate_piat_trace(n, 0.01, 2e-3, rng=np.random.default_rng(n))
        assert np.all(np.diff(trace.timestamps) > 0.0)


class TestSaveLoad:
    def test_round_trip(self, tmp_path, rng):
        trace = generate_piat_trace(50, 0.01, 1e-4, rng=rng, padding="CIT")
        path = save_trace(trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert np.allclose(loaded.timestamps, trace.timestamps)
        assert loaded.metadata["padding"] == "CIT"

    def test_round_trip_without_npz_suffix(self, tmp_path, rng):
        trace = generate_piat_trace(20, 0.01, 1e-4, rng=rng)
        save_trace(trace, tmp_path / "capture")
        loaded = load_trace(tmp_path / "capture")
        assert len(loaded) == 20

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrafficError):
            load_trace(tmp_path / "does-not-exist.npz")
