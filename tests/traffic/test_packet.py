"""Tests for the packet model."""

from __future__ import annotations

import pytest

from repro.traffic import Packet, PacketKind


class TestPacket:
    def test_defaults(self):
        packet = Packet(created_at=1.0)
        assert packet.kind is PacketKind.PAYLOAD
        assert packet.is_payload
        assert not packet.is_dummy
        assert packet.size_bytes > 0

    def test_unique_ids(self):
        a = Packet(created_at=0.0)
        b = Packet(created_at=0.0)
        assert a.packet_id != b.packet_id

    def test_dummy_flag(self):
        packet = Packet(created_at=0.0, kind=PacketKind.DUMMY)
        assert packet.is_dummy
        assert not packet.is_payload

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(created_at=0.0, size_bytes=0)

    def test_negative_creation_time_rejected(self):
        with pytest.raises(ValueError):
            Packet(created_at=-1.0)

    def test_latency_requires_reception(self):
        packet = Packet(created_at=1.0)
        with pytest.raises(ValueError):
            _ = packet.latency
        packet.received_at = 1.5
        assert packet.latency == pytest.approx(0.5)

    def test_copy_for_retransmission_preserves_class_but_not_identity(self):
        original = Packet(created_at=0.0, kind=PacketKind.CROSS, flow_id="x", size_bytes=200)
        clone = original.copy_for_retransmission(at_time=3.0)
        assert clone.kind is PacketKind.CROSS
        assert clone.flow_id == "x"
        assert clone.size_bytes == 200
        assert clone.created_at == 3.0
        assert clone.packet_id != original.packet_id
