"""Tests for rate schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrafficError
from repro.traffic import (
    ConstantRateSchedule,
    DiurnalProfile,
    PiecewiseConstantSchedule,
    TwoRateSchedule,
)
from repro.units import HOUR


class TestConstantRateSchedule:
    def test_rate_is_constant(self):
        schedule = ConstantRateSchedule(40.0)
        assert schedule.rate_at(0.0) == 40.0
        assert schedule.rate_at(1e6) == 40.0
        assert schedule.mean_rate(0.0, 100.0) == 40.0

    def test_negative_rate_rejected(self):
        with pytest.raises(TrafficError):
            ConstantRateSchedule(-1.0)

    def test_mean_rate_bad_window(self):
        with pytest.raises(TrafficError):
            ConstantRateSchedule(1.0).mean_rate(5.0, 5.0)


class TestPiecewiseConstantSchedule:
    def test_rates_switch_at_breakpoints(self):
        schedule = PiecewiseConstantSchedule([(0.0, 10.0), (5.0, 40.0), (10.0, 10.0)])
        assert schedule.rate_at(0.0) == 10.0
        assert schedule.rate_at(4.999) == 10.0
        assert schedule.rate_at(5.0) == 40.0
        assert schedule.rate_at(9.999) == 40.0
        assert schedule.rate_at(10.0) == 10.0
        assert schedule.rate_at(1e5) == 10.0

    def test_mean_rate_is_time_weighted(self):
        schedule = PiecewiseConstantSchedule([(0.0, 10.0), (5.0, 40.0)])
        assert schedule.mean_rate(0.0, 10.0) == pytest.approx(25.0)

    def test_first_breakpoint_must_be_zero(self):
        with pytest.raises(TrafficError):
            PiecewiseConstantSchedule([(1.0, 10.0)])

    def test_breakpoints_strictly_increasing(self):
        with pytest.raises(TrafficError):
            PiecewiseConstantSchedule([(0.0, 10.0), (0.0, 20.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(TrafficError):
            PiecewiseConstantSchedule([(0.0, -5.0)])

    def test_negative_time_rejected(self):
        schedule = PiecewiseConstantSchedule([(0.0, 10.0)])
        with pytest.raises(TrafficError):
            schedule.rate_at(-1.0)

    def test_empty_breakpoints_rejected(self):
        with pytest.raises(TrafficError):
            PiecewiseConstantSchedule([])

    def test_breakpoints_property(self):
        pairs = [(0.0, 10.0), (5.0, 40.0)]
        assert PiecewiseConstantSchedule(pairs).breakpoints == pairs


class TestTwoRateSchedule:
    def test_alternates_between_rates(self):
        schedule = TwoRateSchedule(10.0, 40.0, dwell_time=60.0, total_time=240.0)
        assert schedule.rate_at(0.0) == 10.0
        assert schedule.rate_at(60.0) == 40.0
        assert schedule.rate_at(120.0) == 10.0
        assert schedule.rate_at(180.0) == 40.0

    def test_start_high(self):
        schedule = TwoRateSchedule(10.0, 40.0, dwell_time=60.0, total_time=120.0, start_high=True)
        assert schedule.rate_at(0.0) == 40.0
        assert schedule.label_at(0.0) == "high"
        assert schedule.label_at(61.0) == "low"

    def test_validation(self):
        with pytest.raises(TrafficError):
            TwoRateSchedule(40.0, 10.0, dwell_time=1.0, total_time=10.0)
        with pytest.raises(TrafficError):
            TwoRateSchedule(0.0, 40.0, dwell_time=1.0, total_time=10.0)
        with pytest.raises(TrafficError):
            TwoRateSchedule(10.0, 40.0, dwell_time=0.0, total_time=10.0)

    def test_mean_rate_over_full_cycle(self):
        schedule = TwoRateSchedule(10.0, 40.0, dwell_time=50.0, total_time=200.0)
        assert schedule.mean_rate(0.0, 200.0) == pytest.approx(25.0)


class TestDiurnalProfile:
    def test_default_profile_shape(self):
        profile = DiurnalProfile(base_rate_pps=1000.0)
        night = profile.rate_at(2.0 * HOUR)
        afternoon = profile.rate_at(14.0 * HOUR)
        assert night < afternoon
        assert profile.trough_rate_pps <= night
        assert afternoon <= profile.peak_rate_pps

    def test_profile_repeats_daily(self):
        profile = DiurnalProfile(base_rate_pps=500.0)
        assert profile.rate_at(3.0 * HOUR) == pytest.approx(profile.rate_at(27.0 * HOUR))

    def test_interpolation_is_continuous(self):
        profile = DiurnalProfile(base_rate_pps=100.0)
        eps = 1e-6
        for hour in range(24):
            left = profile.rate_at(hour * HOUR - eps) if hour else profile.rate_at(0.0)
            right = profile.rate_at(hour * HOUR + eps)
            assert right == pytest.approx(left, rel=1e-3, abs=1e-3)

    def test_requires_24_multipliers(self):
        with pytest.raises(TrafficError):
            DiurnalProfile(base_rate_pps=1.0, hourly_multipliers=[1.0] * 23)

    def test_negative_values_rejected(self):
        with pytest.raises(TrafficError):
            DiurnalProfile(base_rate_pps=-1.0)
        with pytest.raises(TrafficError):
            DiurnalProfile(base_rate_pps=1.0, hourly_multipliers=[-1.0] + [1.0] * 23)

    def test_negative_time_rejected(self):
        with pytest.raises(TrafficError):
            DiurnalProfile(base_rate_pps=1.0).rate_at(-5.0)

    @given(hour=st.floats(min_value=0.0, max_value=48.0))
    @settings(max_examples=100, deadline=None)
    def test_rate_bounded_by_peak_and_trough(self, hour):
        profile = DiurnalProfile(base_rate_pps=200.0)
        rate = profile.rate_at(hour * HOUR)
        assert profile.trough_rate_pps - 1e-9 <= rate <= profile.peak_rate_pps + 1e-9
