"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_requires_a_figure(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_rejects_unknown_figure(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.preset == "fast"
        assert args.seed == 2003
        assert args.output is None

    def test_presets_are_accepted(self):
        for preset in PRESETS:
            args = build_parser().parse_args(["fig5", "--preset", preset])
            assert args.preset == preset

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestMain:
    @pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6", "fig8"])
    def test_quick_preset_runs_every_figure(self, figure, capsys):
        exit_code = main([figure, "--preset", "quick", "--seed", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure" in out
        assert "detection" in out.lower()

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "reports" / "fig4.txt"
        exit_code = main(["fig4", "--preset", "quick", "--output", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert "Figure 4" in target.read_text()
        capsys.readouterr()

    def test_seed_changes_empirical_numbers_but_not_structure(self, capsys):
        main(["fig4", "--preset", "quick", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig4", "--preset", "quick", "--seed", "2"])
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]
        assert first != second

    def test_same_seed_is_reproducible(self, capsys):
        main(["fig5", "--preset", "quick", "--seed", "3"])
        first = capsys.readouterr().out
        main(["fig5", "--preset", "quick", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second
