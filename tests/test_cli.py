"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.api import TOML_AVAILABLE
from repro.cli import LEGACY_FIGURES, PRESETS, build_parser, main

needs_toml = pytest.mark.skipif(not TOML_AVAILABLE, reason="no TOML parser available")

SCENARIO_TOML = """\
name = "cli_wan"
title = "CLI scenario smoke"

[grid]
utilizations = [0.1, 0.3]

[base]
n_hops = 2

[run]
mode = "analytic"
sample_sizes = [100]
trials = 4
"""


class TestParser:
    def test_requires_a_figure(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_rejects_unknown_figure(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])
        capsys.readouterr()

    def test_defaults(self):
        # Sentinel None defaults let scenario runs distinguish an explicit
        # --seed/--preset; main() resolves them to "fast" / 2003.
        args = build_parser().parse_args(["fig4"])
        assert args.preset is None
        assert args.seed is None
        assert args.output is None

    def test_default_preset_and_seed_resolve_as_before(self, capsys):
        """Omitting --preset/--seed is identical to the historical defaults."""
        assert main(["fig4", "--preset", "quick"]) == 0
        explicit_seed = capsys.readouterr().out
        assert main(["fig4", "--preset", "quick", "--seed", "2003"]) == 0
        assert capsys.readouterr().out == explicit_seed

    def test_presets_are_accepted(self):
        for preset in PRESETS:
            args = build_parser().parse_args(["fig5", "--preset", preset])
            assert args.preset == preset

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestMain:
    @pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6", "fig8"])
    def test_quick_preset_runs_every_figure(self, figure, capsys):
        exit_code = main([figure, "--preset", "quick", "--seed", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure" in out
        assert "detection" in out.lower()

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "reports" / "fig4.txt"
        exit_code = main(["fig4", "--preset", "quick", "--output", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert "Figure 4" in target.read_text()
        capsys.readouterr()

    def test_seed_changes_empirical_numbers_but_not_structure(self, capsys):
        main(["fig4", "--preset", "quick", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig4", "--preset", "quick", "--seed", "2"])
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]
        assert first != second

    def test_same_seed_is_reproducible(self, capsys):
        main(["fig5", "--preset", "quick", "--seed", "3"])
        first = capsys.readouterr().out
        main(["fig5", "--preset", "quick", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestListCommand:
    def test_lists_every_registered_experiment(self, capsys):
        from repro.api import list_experiments

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in list_experiments():
            assert name in out
        assert "presets:" in out
        assert "--scenario" in out


class TestRunCommand:
    @pytest.mark.parametrize("figure", LEGACY_FIGURES)
    def test_run_output_matches_the_legacy_alias_byte_for_byte(self, figure, capsys):
        assert main(["run", figure, "--preset", "smoke", "--seed", "2003"]) == 0
        via_run = capsys.readouterr().out
        assert main([figure, "--preset", "smoke", "--seed", "2003"]) == 0
        via_alias = capsys.readouterr().out
        assert via_run == via_alias

    def test_runs_an_ablation_from_the_registry(self, capsys):
        assert main(["run", "ablation_estimators", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Ablation — adversary estimator settings" in out

    def test_set_overrides_change_the_configuration(self, capsys):
        assert main(["run", "fig6", "--preset", "smoke"]) == 0
        default = capsys.readouterr().out
        argv = ["run", "fig6", "--preset", "smoke", "--set", "utilizations=0.05,0.4"]
        assert main(argv) == 0
        overridden = capsys.readouterr().out
        assert default != overridden
        assert "0.4" in overridden

    def test_bad_override_key_exits_cleanly(self, capsys):
        assert main(["run", "fig6", "--preset", "smoke", "--set", "utilisation=1"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "utilizations" in err  # the message names the valid fields

    def test_run_requires_exactly_one_target(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["run"])
        assert excinfo.value.code == 2
        capsys.readouterr()
        scenario = tmp_path / "s.toml"
        scenario.write_text(SCENARIO_TOML)
        with pytest.raises(SystemExit):
            main(["run", "fig6", "--scenario", str(scenario)])
        capsys.readouterr()

    def test_set_is_rejected_with_scenario_files(self, capsys, tmp_path):
        scenario = tmp_path / "s.toml"
        scenario.write_text(SCENARIO_TOML)
        with pytest.raises(SystemExit):
            main(["run", "--scenario", str(scenario), "--set", "trials=9"])
        assert "--set" in capsys.readouterr().err

    def test_ci_without_enough_seeds_is_an_argparse_error(self, capsys):
        """The satellite acceptance: rejected at parse time, not mid-experiment."""
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig8", "--preset", "smoke", "--ci"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "--ci requires --seeds >= 2" in err

    def test_multi_seed_run_with_ci(self, capsys):
        argv = ["run", "fig6", "--preset", "smoke", "--seeds", "2", "--ci"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "mean of 2 seeds" in out
        assert "ci95%" in out


class TestScenarioCli:
    # Python 3.10 without the tomli backport has no TOML parser; the
    # scenario *dict* surface is covered by tests/api/test_scenario.py.
    pytestmark = needs_toml

    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "cli_wan.toml"
        path.write_text(SCENARIO_TOML)
        return path

    def test_scenario_file_runs_end_to_end(self, scenario_path, capsys):
        assert main(["run", "--scenario", str(scenario_path)]) == 0
        out = capsys.readouterr().out
        assert "CLI scenario smoke" in out
        assert "utilization=0.3" in out
        assert "sweep summary:" in out

    def test_scenario_warm_cache_round_trip(self, scenario_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["run", "--scenario", str(scenario_path), "--cache-dir", str(cache)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "2 simulated" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm and "2 cache hits" in warm

        def strip(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("sweep summary:")
            ]

        assert strip(cold) == strip(warm)

    def test_sweep_pools_scenario_cells_with_registered_experiments(
        self, scenario_path, capsys
    ):
        argv = [
            "sweep",
            "--experiments", "fig5", "ablation_tap",
            "--scenario", str(scenario_path),
            "--preset", "smoke",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Ablation — adversary tap position" in out
        assert "CLI scenario smoke" in out
        assert "sweep summary:" in out

    def test_missing_scenario_file_exits_cleanly(self, capsys, tmp_path):
        assert main(["run", "--scenario", str(tmp_path / "nope.toml")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_explicit_seed_overrides_the_scenario_seed(self, scenario_path, capsys):
        """--seed is not silently swallowed: it reseeds the scenario's cells."""
        assert main(["run", "--scenario", str(scenario_path)]) == 0
        default = capsys.readouterr().out
        assert main(["run", "--scenario", str(scenario_path), "--seed", "7"]) == 0
        reseeded = capsys.readouterr().out
        assert default != reseeded
        # The scenario's own seed equals the file's run.seed, so passing it
        # explicitly reproduces the default output.
        assert main(["run", "--scenario", str(scenario_path), "--seed", "2003"]) == 0
        assert capsys.readouterr().out == default

    def test_preset_is_rejected_with_scenario_files(self, scenario_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", str(scenario_path), "--preset", "smoke"])
        assert "--preset" in capsys.readouterr().err

    def test_sweep_multi_seed_keeps_the_scenario_seed_base(self, tmp_path, capsys):
        """sweep --scenario --seeds N fans out from the file's run.seed, like run."""
        path = tmp_path / "seeded.toml"
        path.write_text(SCENARIO_TOML + "seed = 42\n")

        def stripped(text):
            return [
                line
                for line in text.splitlines()
                if line.strip() and not line.startswith("sweep summary:")
            ]

        assert main(["run", "--scenario", str(path), "--seeds", "2", "--ci"]) == 0
        via_run = capsys.readouterr().out
        argv = ["sweep", "--experiments", "fig5", "--scenario", str(path),
                "--preset", "smoke", "--seeds", "2", "--ci"]
        assert main(argv) == 0
        via_sweep = capsys.readouterr().out
        assert "mean of 2 seeds" in via_sweep
        for line in stripped(via_run):
            assert line in via_sweep


class TestCacheStats:
    def test_stats_reports_store_health(self, tmp_path, capsys):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        store.put("aaaa11", {}, {"x": 1})
        store.put("aaaa11", {}, {"x": 2})
        store.put("bbbb22", {}, {"y": 1}, kind="capture")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache stats:" in out
        assert "2 records (1 cells, 1 captures)" in out
        assert "2 shard files" in out
        assert "1 superseded duplicates" in out
        assert "schema versions: 1" in out

    def test_stats_on_an_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 records" in out
        assert "(empty store)" in out


class TestBenchCommand:
    """repro bench run / compare, exercised end-to-end at miniature sizes."""

    MINI = ["bench", "run", "--intervals", "400", "--repeats", "1"]

    def test_run_writes_the_artifact_and_gates_on_speedup(self, tmp_path, capsys):
        from repro.runner import BenchResult

        artifact = tmp_path / "BENCH_test.json"
        code = main(self.MINI + ["--pr", "test", "--output", str(artifact), "--min-speedup", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup gate passed" in out
        assert BenchResult.load(artifact).pr == "test"

    def test_unreachable_min_speedup_fails(self, capsys):
        code = main(self.MINI + ["--min-speedup", "1e9"])
        captured = capsys.readouterr()
        assert code == 1
        assert "below the required" in captured.err

    def test_compare_detects_a_synthetic_regression(self, tmp_path, capsys):
        import json

        from repro.runner import BenchResult, collect_machine_info

        current = BenchResult(
            pr="t", created_utc="2026-08-07T00:00:00Z",
            machine=collect_machine_info(),
            metrics={"cold_capture_speedup": 10.0},
        )
        doctored = BenchResult(
            pr="t", created_utc="2026-08-07T00:00:00Z",
            machine=collect_machine_info(),
            metrics={"cold_capture_speedup": 100.0},
        )
        current_path, baseline_path = tmp_path / "cur.json", tmp_path / "base.json"
        current.save(current_path)
        doctored.save(baseline_path)
        assert main(["bench", "compare", str(current_path), str(baseline_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["bench", "compare", str(current_path), str(current_path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_committed_artifact_is_loadable_and_fast(self):
        """The repo's own BENCH_pr6.json parses and records the >=3x speedup."""
        from pathlib import Path

        from repro.runner import BenchResult

        artifact = Path(__file__).resolve().parents[1] / "BENCH_pr6.json"
        result = BenchResult.load(artifact)
        assert result.metrics["cold_capture_speedup"] >= 3.0
        assert result.notes["captures_identical"] is True


class TestCacheIndexCommand:
    def test_index_builds_and_reports_counts(self, tmp_path, capsys):
        from repro.runner import ResultsStore
        from repro.store import INDEX_FILENAME

        store = ResultsStore(tmp_path)
        store.put("aaaa11", {"seed": 1}, {"measured_variance_ratio": 1.0})
        assert main(["cache", "index", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache index:" in out
        assert "1 records written" in out
        assert (tmp_path / INDEX_FILENAME).exists()

    def test_second_index_run_writes_zero_rows(self, tmp_path, capsys):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        store.put("aaaa11", {"seed": 1}, {"measured_variance_ratio": 1.0})
        assert main(["cache", "index", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "index", "--cache-dir", str(tmp_path)]) == 0
        assert "0 records written" in capsys.readouterr().out

    def test_compact_refreshes_an_existing_index(self, tmp_path, capsys):
        from repro.runner import ResultsStore

        store = ResultsStore(tmp_path)
        store.put("aaaa11", {"seed": 1}, {"measured_variance_ratio": 1.0})
        store.put("aaaa11", {"seed": 1}, {"measured_variance_ratio": 2.0})
        assert main(["cache", "index", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache compact:" in out
        assert "cache index:" in out  # refreshed in the same pass

    def test_compact_without_an_index_does_not_create_one(self, tmp_path, capsys):
        from repro.runner import ResultsStore
        from repro.store import INDEX_FILENAME

        ResultsStore(tmp_path).put("aaaa11", {}, {"measured_variance_ratio": 1.0})
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        assert "cache index:" not in capsys.readouterr().out
        assert not (tmp_path / INDEX_FILENAME).exists()


class TestServeCommand:
    def test_parser_accepts_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--cache-dir", ".sweep-cache", "--host", "0.0.0.0", "--port", "0"]
        )
        assert args.command == "serve"
        assert args.port == 0

    def test_serve_requires_a_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve"])
        assert excinfo.value.code == 2

    def test_serve_on_a_non_directory_store_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "not-a-dir"
        path.write_text("")
        assert main(["serve", "--cache-dir", str(path)]) == 2
        assert "repro: error:" in capsys.readouterr().err
