"""Tests for the checker engine: clean real tree, loud doctored tree."""

from __future__ import annotations

import shutil

import pytest

from repro.analysis.checker import discover_modules, run_check
from repro.exceptions import ConfigurationError

from analysis_helpers import SRC_ROOT

#: One violation per rule family, injected into the doctored tree.
_BAD_MODULE = '''\
"""Doctored module: one violation per rule family."""

import random
import time

import numpy as np


def undisciplined(streams):
    rng = np.random.default_rng()
    draw = np.random.normal()
    stamp = time.time()
    stream = streams.get("paylaod")
    for item in {1, 2, 3}:
        stamp += item
    return rng, draw, stamp, stream


class DoctoredExperiment:
    name = "doctored"
'''


@pytest.fixture
def doctored_root(tmp_path):
    """A full copy of the real package with seeded violations."""
    root = tmp_path / "tree"
    shutil.copytree(
        SRC_ROOT / "repro",
        root / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    (root / "repro" / "experiments" / "doctored_bad.py").write_text(_BAD_MODULE)
    cells = root / "repro" / "runner" / "cells.py"
    cells.write_text(
        cells.read_text().replace("trials: int", "trials: int\n    sneaky: int = 0", 1)
    )
    return root


class TestRunCheck:
    def test_real_tree_is_clean(self):
        report = run_check(root=SRC_ROOT)
        assert report.findings == []
        assert report.ok and report.exit_code == 0
        # The two justified exceptions are consumed, not reported.
        assert report.suppressed_count == 2

    def test_real_tree_without_baseline_shows_the_justified_findings(self):
        report = run_check(root=SRC_ROOT, use_baseline=False)
        assert report.exit_code == 1
        assert sorted(f.rule for f in report.findings) == ["CLK001", "RNG004"]

    def test_doctored_tree_fails_per_family(self, doctored_root):
        report = run_check(root=doctored_root, use_baseline=False)
        assert report.exit_code == 1
        fired = {f.rule for f in report.findings}
        assert {"RNG001", "RNG002", "RNG003", "RNG004", "CLK001", "ORD001",
                "SCH001", "EXP002"} <= fired

    def test_rule_filter_restricts_the_run(self, doctored_root):
        report = run_check(
            root=doctored_root, use_baseline=False, rule_filter=["SCH001"]
        )
        assert {f.rule for f in report.findings} == {"SCH001"}
        assert report.rules_run == ["SCH001"]

    def test_rule_filter_does_not_stale_unexercised_baseline_entries(self):
        # The shipped baseline excuses CLK001 and RNG004 findings. A run
        # restricted to one of those rules must not flag the *other* rule's
        # entry as stale (BASE001) — it was never exercised.
        report = run_check(root=SRC_ROOT, rule_filter=["RNG004"])
        assert report.findings == []
        assert report.ok
        assert report.suppressed_count == 1

    def test_unknown_rule_filter_raises(self):
        with pytest.raises(ConfigurationError, match="NOPE99"):
            run_check(root=SRC_ROOT, rule_filter=["NOPE99"])

    def test_unparseable_module_is_a_parse_finding(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "broken.py").write_text("def oops(:\n")
        report = run_check(root=tmp_path, use_baseline=False)
        assert [f.rule for f in report.findings if f.rule == "PARSE"] == ["PARSE"]
        assert report.exit_code == 1

    def test_root_without_package_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="repro"):
            run_check(root=tmp_path)

    def test_stale_baseline_entry_is_an_error(self, tmp_path):
        baseline = tmp_path / "baseline.toml"
        baseline.write_text(
            '[[ignore]]\nrule = "RNG001"\npath = "repro/gone.py"\n'
            'reason = "the module was deleted"\n'
        )
        report = run_check(root=SRC_ROOT, baseline_path=baseline)
        rules = sorted(f.rule for f in report.findings)
        # The two real (normally baselined) findings resurface plus BASE001.
        assert rules == ["BASE001", "CLK001", "RNG004"]
        assert report.exit_code == 1

    def test_json_report_round_trips(self):
        import json

        report = run_check(root=SRC_ROOT)
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["modules_checked"] == report.modules_checked
        assert len(payload["suppressed"]) == 2


class TestDiscoverModules:
    def test_discovers_the_whole_package(self):
        modules, failures = discover_modules(SRC_ROOT)
        assert failures == []
        assert "repro/sim/random.py" in modules
        assert all(rel.startswith("repro/") for rel in modules)
        assert len(modules) > 50
