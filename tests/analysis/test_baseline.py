"""Tests for the justified-suppression baseline file."""

from __future__ import annotations

import pytest

from repro.analysis.baseline import BaselineEntry, apply_baseline, load_baseline
from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError


def _finding(rule="RNG001", path="repro/a.py", context="numpy.random.default_rng()"):
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=path,
        line=3,
        message="m",
        context=context,
    )


class TestLoadBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.toml") == []
        assert load_baseline(None) == []

    def test_parses_entries(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[ignore]]\nrule = "CLK001"\npath = "repro/runner/bench.py"\n'
            'context = "datetime"\nreason = "artifact metadata only"\n'
        )
        entries = load_baseline(path)
        assert entries == [
            BaselineEntry(
                rule="CLK001",
                path="repro/runner/bench.py",
                context="datetime",
                reason="artifact metadata only",
            )
        ]

    def test_reason_is_required(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text('[[ignore]]\nrule = "CLK001"\npath = "repro/a.py"\n')
        with pytest.raises(ConfigurationError, match="reason"):
            load_baseline(path)

    def test_unknown_keys_are_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            '[[ignore]]\nrule = "CLK001"\npath = "repro/a.py"\n'
            'reason = "r"\nline = 12\n'
        )
        with pytest.raises(ConfigurationError, match="line"):
            load_baseline(path)

    def test_invalid_toml_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text("[[ignore\n")
        with pytest.raises(ConfigurationError, match="TOML"):
            load_baseline(path)


class TestApplyBaseline:
    def test_matching_entry_suppresses(self):
        entry = BaselineEntry(
            rule="RNG001", path="repro/a.py", context="default_rng", reason="r"
        )
        surviving, suppressed, unused = apply_baseline([_finding()], [entry])
        assert surviving == []
        assert len(suppressed[entry]) == 1
        assert unused == []

    def test_context_is_a_substring_match(self):
        entry = BaselineEntry(rule="RNG001", path="repro/a.py", context="", reason="r")
        surviving, _, unused = apply_baseline([_finding()], [entry])
        assert surviving == [] and unused == []

    def test_wrong_rule_or_path_does_not_match(self):
        entry = BaselineEntry(
            rule="RNG002", path="repro/a.py", context="", reason="r"
        )
        surviving, _, unused = apply_baseline([_finding()], [entry])
        assert len(surviving) == 1
        assert unused == [entry]

    def test_unused_entries_are_reported(self):
        entry = BaselineEntry(
            rule="CLK001", path="repro/gone.py", context="", reason="stale"
        )
        _, _, unused = apply_baseline([], [entry])
        assert unused == [entry]
