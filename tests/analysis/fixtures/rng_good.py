"""Fixture: RNG discipline done right — every rule stays silent."""

from typing import Optional

import numpy as np

from repro.sim.random import RandomStreams, derived_rng, seeded_rng


def sample(rng: Optional[np.random.Generator] = None) -> np.ndarray:
    generator = rng if rng is not None else derived_rng("payload")
    return generator.exponential(1.0, size=8)


def build_streams(seed: int) -> RandomStreams:
    return RandomStreams(seed=seed)


def build_named(seed: int) -> np.random.Generator:
    return seeded_rng(seed)
