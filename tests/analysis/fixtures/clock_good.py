"""Fixture: duration-only clocks are legal; no CLK001 findings."""

import time


def timed(work) -> float:
    start = time.perf_counter()
    work()
    elapsed = time.perf_counter() - start
    tick = time.monotonic()
    return elapsed + (time.monotonic() - tick)
