"""Fixture: contract gaps that must raise EXP001/EXP002."""

from repro.api.registry import ExperimentDefinition, register_experiment


class BrokenExperiment:  # EXP002: missing config, cells, run, assemble
    name = "broken"

    def describe(self) -> str:
        return "not actually runnable"


@register_experiment("halfbaked")
class HalfBakedDefinition(ExperimentDefinition):  # EXP001: missing preset_config, build
    config_cls = dict
