"""Fixture: every way RNG discipline historically eroded, one per line."""

import random

import numpy as np

from repro.sim.random import RandomStreams


def sample() -> float:
    rng = np.random.default_rng()  # RNG001: unseeded
    seeded = np.random.default_rng(42)  # RNG001: bypasses seeded_rng
    legacy = np.random.normal(0.0, 1.0)  # RNG002: global state
    stdlib = random.random()  # RNG003 (the import above already fires)
    streams = RandomStreams()  # RNG001: draws OS entropy
    return float(rng.uniform()) + seeded.uniform() + legacy + stdlib + streams.get("payload").uniform()
