"""Fixture: set and filesystem order is always pinned; no ORD findings."""

import os
from pathlib import Path


def ordered(labels) -> list:
    unique = {label.strip() for label in labels}
    ranked = sorted(unique)
    count = len({1, 2, 3})
    smallest = min({4, 5, 6})
    return ranked + [count, smallest]


def listing(root: Path) -> list:
    names = sorted(os.listdir(root))
    paths = sorted(root.glob("*.json"))
    return names + [path.name for path in paths]
