"""Fixture: wall-clock reads that must each raise CLK001."""

import time
from datetime import date, datetime


def stamp() -> tuple:
    now = time.time()
    nanos = time.time_ns()
    wall = datetime.now()
    old = datetime.utcnow()
    day = date.today()
    return now, nanos, wall, old, day
