"""Fixture: order leaks that must each raise ORD001/ORD002."""

import glob
import os
from pathlib import Path


def leaky(labels) -> list:
    rows = []
    for label in {item.strip() for item in labels}:  # ORD001: for over set
        rows.append(label)
    escaped = list({1, 2, 3})  # ORD001: list() of a set
    squares = [value * value for value in {4, 5}]  # ORD001: comprehension over set
    return rows + escaped + squares


def listing(root: Path) -> list:
    names = os.listdir(root)  # ORD002: unsorted listdir
    paths = [path.name for path in root.glob("*.json")]  # ORD002: unsorted glob
    found = glob.glob("*.txt")  # ORD002: unsorted module-level glob
    return names + paths + found
