"""Fixture: stream names that all match DECLARED_STREAMS; RNG004 silent."""


def draw(streams, label: str, flow: int):
    payload = streams.get("payload")
    jitter = streams.get(f"gateway-jitter-{label}")
    noise = streams.get(f"net-noise-{flow}")
    children = streams.spawn(f"gateway-{label}", 3)
    return payload, jitter, noise, children
