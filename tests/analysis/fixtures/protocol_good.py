"""Fixture: a definition and an experiment that satisfy both contracts."""

from repro.api.registry import ExperimentDefinition, register_experiment


class GoodConfig:
    pass


class GoodExperiment:
    name = "good"

    def __init__(self, config=None):
        self.config = config if config is not None else GoodConfig()

    def describe(self) -> str:
        return "a conforming experiment"

    def cells(self, seeds=None):
        return []

    def run(self, runner=None, seeds=None, confidence=None):
        return self.assemble(None, seeds=seeds, confidence=confidence)

    def assemble(self, report, seeds=None, confidence=None):
        return report


@register_experiment("good")
class GoodDefinition(ExperimentDefinition):
    config_cls = GoodConfig

    def preset_config(self, preset: str, seed: int) -> GoodConfig:
        return GoodConfig()

    def build(self, config: GoodConfig) -> GoodExperiment:
        return GoodExperiment(config)
