"""Fixture: stream-name mistakes that must each raise RNG004."""


def draw(streams, label: str, name):
    typo = streams.get("paylaod")  # RNG004: literal typo
    family_typo = streams.get(f"gatway-jitter-{label}")  # RNG004: prefix typo
    opaque = streams.get(name)  # RNG004: not statically checkable
    dynamic = streams.get(f"{label}-tail")  # RNG004: dynamic prefix
    return typo, family_typo, opaque, dynamic
