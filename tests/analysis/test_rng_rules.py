"""Tests for the RNG discipline rules (RNG001-RNG004)."""

from __future__ import annotations

import pytest

from repro.analysis.rng_rules import (
    RNG_HOME,
    LegacyGlobalRngRule,
    StdlibEntropyRule,
    UndeclaredStreamRule,
    UnseededRngRule,
)

from analysis_helpers import load_fixture, load_real_module, make_module, make_tree


class TestUnseededRng:
    def test_good_fixture_is_clean(self):
        assert UnseededRngRule().check_module(load_fixture("rng_good")) == []

    def test_bad_fixture_flags_every_construction(self):
        findings = UnseededRngRule().check_module(load_fixture("rng_bad"))
        contexts = [f.context for f in findings]
        assert "numpy.random.default_rng()" in contexts
        assert "numpy.random.default_rng(seed)" in contexts
        assert "RandomStreams()" in contexts

    def test_rng_home_is_exempt(self):
        module = make_module(
            "import numpy as np\nrng = np.random.default_rng()\n", rel=RNG_HOME
        )
        assert UnseededRngRule().check_module(module) == []

    def test_seeded_randomstreams_is_clean(self):
        module = make_module(
            "from repro.sim.random import RandomStreams\n"
            "streams = RandomStreams(seed=7)\n"
        )
        assert UnseededRngRule().check_module(module) == []


class TestLegacyGlobalRng:
    def test_good_fixture_is_clean(self):
        assert LegacyGlobalRngRule().check_module(load_fixture("rng_good")) == []

    def test_bad_fixture_flags_the_distribution_draw(self):
        findings = LegacyGlobalRngRule().check_module(load_fixture("rng_bad"))
        assert [f.context for f in findings] == ["numpy.random.normal"]

    def test_alias_cannot_hide_the_call(self):
        module = make_module(
            "import numpy.random as npr\nx = npr.uniform(0.0, 1.0)\n"
        )
        findings = LegacyGlobalRngRule().check_module(module)
        assert [f.context for f in findings] == ["numpy.random.uniform"]

    def test_constructors_are_allowed(self):
        module = make_module(
            "import numpy as np\nseq = np.random.SeedSequence(3)\n"
            "gen = np.random.PCG64(seq)\n"
        )
        assert LegacyGlobalRngRule().check_module(module) == []


class TestStdlibEntropy:
    def test_good_fixture_is_clean(self):
        assert StdlibEntropyRule().check_module(load_fixture("rng_good")) == []

    def test_bad_fixture_flags_the_import(self):
        findings = StdlibEntropyRule().check_module(load_fixture("rng_bad"))
        assert any(f.context == "import random" for f in findings)

    @pytest.mark.parametrize(
        "source, context",
        [
            ("import secrets\n", "import secrets"),
            ("from random import shuffle\n", "from random import"),
            ("import os\nos.urandom(8)\n", "os.urandom"),
            ("import uuid\nuuid.uuid4()\n", "uuid.uuid4"),
        ],
    )
    def test_each_entropy_source(self, source, context):
        findings = StdlibEntropyRule().check_module(make_module(source))
        assert [f.context for f in findings] == [context]


class TestUndeclaredStream:
    def _run(self, fixture_name):
        tree = make_tree(
            load_real_module(RNG_HOME), load_fixture(fixture_name)
        )
        return UndeclaredStreamRule().check_project(tree, root=None)

    def test_good_fixture_is_clean(self):
        assert self._run("streams_good") == []

    def test_bad_fixture_flags_every_mistake(self):
        findings = self._run("streams_bad")
        contexts = [f.context for f in findings]
        assert "paylaod" in contexts  # literal typo
        assert "gatway-jitter-*" in contexts  # prefix typo in an f-string
        assert "streams.get(<dynamic>)" in contexts  # opaque variable
        assert "*-tail" in contexts  # dynamic prefix
        assert len(findings) == 4

    def test_missing_registry_is_itself_a_finding(self):
        bare_home = make_module("x = 1\n", rel=RNG_HOME)
        tree = make_tree(bare_home, load_fixture("streams_good"))
        findings = UndeclaredStreamRule().check_project(tree, root=None)
        assert [f.context for f in findings] == ["DECLARED_STREAMS"]

    def test_absent_home_module_disables_the_rule(self):
        tree = make_tree(load_fixture("streams_bad"))
        assert UndeclaredStreamRule().check_project(tree, root=None) == []
