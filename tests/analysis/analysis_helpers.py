"""Shared helpers for the static-analysis tests (imported, not a conftest).

Fixture source files live in ``tests/analysis/fixtures/`` as real Python
files (never imported — only parsed), one good/bad pair per rule family.
Project rules additionally need the anchor modules they read contracts
from (``sim/random.py``, ``api/protocol.py``, ...); tests assemble those
from the real source tree via :func:`make_tree`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Optional

from repro.analysis.rules import ModuleContext

FIXTURES = Path(__file__).parent / "fixtures"

#: The real source tree this repository ships (the default checked root).
SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def make_module(source: str, rel: str = "repro/experiments/sample.py") -> ModuleContext:
    """A ModuleContext parsed from literal source."""
    return ModuleContext(
        path=Path("/virtual") / rel,
        rel=rel,
        tree=ast.parse(source),
        source=source,
    )


def load_fixture(name: str, rel: Optional[str] = None) -> ModuleContext:
    """A ModuleContext parsed from ``tests/analysis/fixtures/<name>.py``."""
    path = FIXTURES / f"{name}.py"
    source = path.read_text(encoding="utf-8")
    return make_module(source, rel=rel or f"repro/experiments/{name}.py")


def load_real_module(rel: str) -> ModuleContext:
    """A ModuleContext parsed from the repository's own source tree."""
    path = SRC_ROOT / rel
    source = path.read_text(encoding="utf-8")
    return ModuleContext(path=path, rel=rel, tree=ast.parse(source), source=source)


def make_tree(*modules: ModuleContext) -> Dict[str, ModuleContext]:
    """A project-rule input mapping from ModuleContexts."""
    return {module.rel: module for module in modules}
