"""Tests for the fingerprint schema drift rule (SCH001)."""

from __future__ import annotations

import json

from repro.analysis.schema_rules import (
    CAPTURE_MODULE,
    CELLS_MODULE,
    PACKAGED_BASELINE,
    FingerprintSchemaRule,
    extract_live_schema,
)

from analysis_helpers import SRC_ROOT, load_real_module, make_module, make_tree


def _real_tree():
    return make_tree(load_real_module(CELLS_MODULE), load_real_module(CAPTURE_MODULE))


class TestSchemaBaseline:
    def test_committed_baseline_matches_live_dataclasses(self):
        """The contract test: fingerprint_schema.json mirrors the real code.

        If this fails you changed SweepCell/CaptureSpec (or their
        config_dict serialization) without bumping the committed schema
        baseline — see docs/determinism.md for the bump procedure.
        """
        cells = load_real_module(CELLS_MODULE)
        capture = load_real_module(CAPTURE_MODULE)
        live = extract_live_schema(cells, capture)
        committed = json.loads(PACKAGED_BASELINE.read_text(encoding="utf-8"))
        assert live == committed

    def test_clean_tree_has_no_findings(self):
        findings = FingerprintSchemaRule().check_project(_real_tree(), root=SRC_ROOT)
        assert findings == []

    def test_added_field_is_drift(self):
        source = (SRC_ROOT / CELLS_MODULE).read_text(encoding="utf-8")
        doctored = source.replace("trials: int", "trials: int\n    sneaky: int = 0", 1)
        tree = make_tree(
            make_module(doctored, rel=CELLS_MODULE),
            load_real_module(CAPTURE_MODULE),
        )
        findings = FingerprintSchemaRule().check_project(tree, root=SRC_ROOT)
        assert any(
            f.context == "SweepCell.fields" and "sneaky" in f.message for f in findings
        )

    def test_removed_config_key_is_drift(self):
        source = (SRC_ROOT / CAPTURE_MODULE).read_text(encoding="utf-8")
        doctored = source.replace('"kind": "gateway-capture",', "", 1)
        tree = make_tree(
            load_real_module(CELLS_MODULE),
            make_module(doctored, rel=CAPTURE_MODULE),
        )
        findings = FingerprintSchemaRule().check_project(tree, root=SRC_ROOT)
        assert any(f.context == "CaptureSpec.required_config_keys" for f in findings)

    def test_schema_version_bump_is_drift(self):
        source = (SRC_ROOT / CELLS_MODULE).read_text(encoding="utf-8")
        doctored = source.replace("SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2", 1)
        tree = make_tree(
            make_module(doctored, rel=CELLS_MODULE),
            load_real_module(CAPTURE_MODULE),
        )
        findings = FingerprintSchemaRule().check_project(tree, root=SRC_ROOT)
        assert any(f.context == "SCHEMA_VERSION" for f in findings)

    def test_non_repro_tree_is_skipped(self):
        tree = make_tree(make_module("x = 1\n", rel="repro/other.py"))
        assert FingerprintSchemaRule().check_project(tree, root=SRC_ROOT) == []
