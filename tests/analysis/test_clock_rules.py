"""Tests for the wall-clock and ordering rules (CLK001, ORD001, ORD002)."""

from __future__ import annotations

from repro.analysis.clock_rules import (
    UnorderedSetIterationRule,
    UnsortedListingRule,
    WallClockRule,
)

from analysis_helpers import load_fixture, make_module


class TestWallClock:
    def test_good_fixture_is_clean(self):
        assert WallClockRule().check_module(load_fixture("clock_good")) == []

    def test_bad_fixture_flags_every_read(self):
        findings = WallClockRule().check_module(load_fixture("clock_bad"))
        contexts = sorted(f.context for f in findings)
        assert contexts == [
            "datetime.date.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "time.time",
            "time.time_ns",
        ]

    def test_aliased_import_is_still_caught(self):
        module = make_module("import time as clock\nt = clock.time()\n")
        findings = WallClockRule().check_module(module)
        assert [f.context for f in findings] == ["time.time"]


class TestUnorderedSetIteration:
    def test_good_fixture_is_clean(self):
        assert UnorderedSetIterationRule().check_module(load_fixture("ordering_good")) == []

    def test_bad_fixture_flags_every_leak(self):
        findings = UnorderedSetIterationRule().check_module(load_fixture("ordering_bad"))
        assert len(findings) == 3

    def test_sorted_wrapper_silences(self):
        module = make_module("out = [x for x in sorted({3, 1, 2})]\n")
        assert UnorderedSetIterationRule().check_module(module) == []

    def test_set_built_from_set_is_fine(self):
        module = make_module("dedup = {x for x in {1, 2, 3}}\n")
        assert UnorderedSetIterationRule().check_module(module) == []


class TestUnsortedListing:
    def test_good_fixture_is_clean(self):
        assert UnsortedListingRule().check_module(load_fixture("ordering_good")) == []

    def test_bad_fixture_flags_every_listing(self):
        findings = UnsortedListingRule().check_module(load_fixture("ordering_bad"))
        contexts = sorted(f.context for f in findings)
        assert contexts == ["glob", "glob", "listdir"]

    def test_sorted_pathlib_glob_is_fine(self):
        module = make_module(
            "from pathlib import Path\n"
            "paths = sorted(Path('.').glob('*.jsonl'))\n"
        )
        assert UnsortedListingRule().check_module(module) == []
