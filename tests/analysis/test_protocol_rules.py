"""Tests for the experiment protocol conformance rules (EXP001, EXP002)."""

from __future__ import annotations

from repro.analysis.protocol_rules import (
    PROTOCOL_MODULE,
    ExperimentProtocolRule,
    RegisteredDefinitionRule,
    extract_protocol_surface,
)

from analysis_helpers import load_fixture, load_real_module, make_module, make_tree


class TestProtocolSurface:
    def test_surface_is_parsed_from_the_real_protocol(self):
        methods, attrs = extract_protocol_surface(load_real_module(PROTOCOL_MODULE))
        assert methods == {"describe", "cells", "run", "assemble"}
        assert attrs == {"name", "config"}


class TestRegisteredDefinition:
    def test_good_fixture_is_clean(self):
        tree = make_tree(load_fixture("protocol_good", rel="repro/api/protocol_good.py"))
        assert RegisteredDefinitionRule().check_project(tree, root=None) == []

    def test_bad_fixture_flags_the_missing_members(self):
        tree = make_tree(load_fixture("protocol_bad", rel="repro/api/protocol_bad.py"))
        findings = RegisteredDefinitionRule().check_project(tree, root=None)
        assert len(findings) == 1
        assert findings[0].context == "HalfBakedDefinition:build,preset_config"

    def test_inherited_stubs_do_not_satisfy(self):
        source = (
            "from repro.api.registry import ExperimentDefinition, register_experiment\n"
            "@register_experiment('empty')\n"
            "class EmptyDefinition(ExperimentDefinition):\n"
            "    pass\n"
        )
        tree = make_tree(make_module(source, rel="repro/api/empty.py"))
        findings = RegisteredDefinitionRule().check_project(tree, root=None)
        assert len(findings) == 1
        assert "config_cls" in findings[0].context

    def test_members_inherited_from_real_base_count(self):
        base = (
            "from repro.api.registry import ExperimentDefinition\n"
            "class SharedBase(ExperimentDefinition):\n"
            "    config_cls = dict\n"
            "    def preset_config(self, preset, seed):\n"
            "        return {}\n"
            "    def build(self, config):\n"
            "        return config\n"
        )
        child = (
            "from repro.api.registry import register_experiment\n"
            "from repro.api.shared import SharedBase\n"
            "@register_experiment('derived')\n"
            "class DerivedDefinition(SharedBase):\n"
            "    pass\n"
        )
        tree = make_tree(
            make_module(base, rel="repro/api/shared.py"),
            make_module(child, rel="repro/api/derived.py"),
        )
        assert RegisteredDefinitionRule().check_project(tree, root=None) == []


class TestExperimentProtocol:
    def _run(self, *extra):
        tree = make_tree(load_real_module(PROTOCOL_MODULE), *extra)
        return ExperimentProtocolRule().check_project(tree, root=None)

    def test_good_fixture_is_clean(self):
        extra = load_fixture("protocol_good", rel="repro/api/protocol_good.py")
        assert self._run(extra) == []

    def test_bad_fixture_flags_the_missing_surface(self):
        extra = load_fixture("protocol_bad", rel="repro/api/protocol_bad.py")
        findings = self._run(extra)
        assert len(findings) == 1
        assert findings[0].context == "BrokenExperiment:assemble,cells,config,run"

    def test_protocol_class_itself_is_not_flagged(self):
        assert self._run() == []

    def test_surface_inherited_from_base_class_counts(self):
        good = load_fixture("protocol_good", rel="repro/api/protocol_good.py")
        child = make_module(
            "from repro.api.protocol_good import GoodExperiment\n"
            "class ChildExperiment(GoodExperiment):\n"
            "    pass\n",
            rel="repro/experiments/child.py",
        )
        assert self._run(good, child) == []

    def test_outside_experiment_packages_is_ignored(self):
        stray = make_module(
            "class StrayExperiment:\n    pass\n", rel="repro/runner/stray.py"
        )
        assert self._run(stray) == []

    def test_missing_protocol_module_disables_the_rule(self):
        extra = load_fixture("protocol_bad", rel="repro/api/protocol_bad.py")
        tree = make_tree(extra)
        assert ExperimentProtocolRule().check_project(tree, root=None) == []
