"""Tests for the ``repro check`` subcommand."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.cli import main

from analysis_helpers import SRC_ROOT


@pytest.fixture
def violation_root(tmp_path):
    """A copy of the real package with one seeded RNG violation."""
    root = tmp_path / "tree"
    shutil.copytree(
        SRC_ROOT / "repro",
        root / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    (root / "repro" / "experiments" / "cli_bad.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )
    return root


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "suppressed by baseline" in out

    def test_violations_exit_one(self, violation_root, capsys):
        assert main(["check", "--root", str(violation_root), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "FAILED" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_json_format_carries_findings(self, violation_root, capsys):
        code = main(
            ["check", "--root", str(violation_root), "--no-baseline", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "RNG001" for f in payload["findings"])

    def test_list_rules_prints_the_registry(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "RNG004", "CLK001", "ORD001", "SCH001", "EXP002"):
            assert rule_id in out

    def test_rule_filter(self, violation_root, capsys):
        code = main(
            ["check", "--root", str(violation_root), "--no-baseline", "--rule", "SCH001"]
        )
        assert code == 0  # only the RNG violation was seeded
        capsys.readouterr()

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["check", "--rule", "NOPE99"]) == 2
        assert "NOPE99" in capsys.readouterr().err
