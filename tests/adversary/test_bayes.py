"""Tests for the KDE Bayes classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import KDEBayesClassifier
from repro.exceptions import NotFittedError, TrainingError


def make_training(rng, mu_a=0.0, mu_b=5.0, sigma=1.0, n=300):
    return {
        "a": rng.normal(mu_a, sigma, size=n),
        "b": rng.normal(mu_b, sigma, size=n),
    }


class TestTraining:
    def test_fit_returns_self_and_sets_labels(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng))
        assert classifier.is_fitted
        assert classifier.labels == ["a", "b"]

    def test_unfitted_classifier_raises(self):
        with pytest.raises(NotFittedError):
            KDEBayesClassifier().classify(0.0)
        with pytest.raises(NotFittedError):
            KDEBayesClassifier().labels

    def test_needs_two_classes(self, rng):
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit({"only": rng.normal(size=10)})

    def test_needs_two_samples_per_class(self, rng):
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit({"a": [1.0], "b": rng.normal(size=10)})

    def test_rejects_non_finite_training_values(self, rng):
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit({"a": [1.0, np.nan], "b": rng.normal(size=10)})

    def test_prior_validation(self, rng):
        training = make_training(rng)
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit(training, priors={"a": 0.5, "c": 0.5})
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit(training, priors={"a": 0.7, "b": 0.7})
        with pytest.raises(TrainingError):
            KDEBayesClassifier().fit(training, priors={"a": 1.0, "b": 0.0})


class TestClassification:
    def test_separable_classes_classified_correctly(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng))
        assert classifier.classify(-0.5) == "a"
        assert classifier.classify(5.5) == "b"

    def test_classify_many(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng))
        assert classifier.classify_many([-1.0, 6.0, 0.2]) == ["a", "b", "a"]

    def test_posterior_probabilities_sum_to_one(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng))
        posteriors = classifier.posterior_probabilities(2.5)
        assert sum(posteriors.values()) == pytest.approx(1.0)
        assert set(posteriors) == {"a", "b"}

    def test_feature_values_outside_training_range_still_classified(self, rng):
        """Log-space evaluation keeps decisions meaningful outside the training range."""
        classifier = KDEBayesClassifier().fit(make_training(rng))
        # Clearly on one side of the two classes (means 0 and 5) but beyond
        # every training point in that direction.
        assert classifier.classify(-6.0) == "a"
        assert classifier.classify(11.0) == "b"
        # Extremely far away the decision may go either way (it is dominated by
        # the per-class bandwidths), but it must not crash or return NaN.
        posteriors = classifier.log_posteriors(-100.0)
        assert all(np.isfinite(v) for v in posteriors.values())
        assert classifier.classify(-100.0) in {"a", "b"}

    def test_priors_shift_the_decision(self, rng):
        training = make_training(rng, mu_a=0.0, mu_b=2.0)
        neutral = KDEBayesClassifier().fit(training)
        biased = KDEBayesClassifier().fit(training, priors={"a": 0.95, "b": 0.05})
        # A point exactly between the classes goes to the heavily favoured one.
        midpoint = 1.0
        assert biased.classify(midpoint) == "a"
        # The neutral classifier splits the same point by likelihood only.
        assert neutral.posterior_probabilities(midpoint)["b"] > 0.3

    def test_bayes_accuracy_close_to_optimum_for_known_gaussians(self, rng):
        """Empirical accuracy approaches the analytic Bayes rate for N(0,1) vs N(2,1)."""
        training = make_training(rng, mu_a=0.0, mu_b=2.0, n=2000)
        classifier = KDEBayesClassifier().fit(training)
        from scipy.stats import norm

        test_a = rng.normal(0.0, 1.0, size=2000)
        test_b = rng.normal(2.0, 1.0, size=2000)
        correct = sum(1 for x in test_a if classifier.classify(x) == "a") + sum(
            1 for x in test_b if classifier.classify(x) == "b"
        )
        accuracy = correct / 4000.0
        bayes_optimal = norm.cdf(1.0)  # threshold at 1.0 for equal priors
        assert accuracy == pytest.approx(bayes_optimal, abs=0.03)

    def test_three_class_classification(self, rng):
        training = {
            "low": rng.normal(0.0, 0.5, size=300),
            "mid": rng.normal(3.0, 0.5, size=300),
            "high": rng.normal(6.0, 0.5, size=300),
        }
        classifier = KDEBayesClassifier().fit(training)
        assert classifier.classify(0.1) == "low"
        assert classifier.classify(3.1) == "mid"
        assert classifier.classify(6.2) == "high"

    def test_ties_are_deterministic(self, rng):
        values = rng.normal(0.0, 1.0, size=200)
        classifier = KDEBayesClassifier().fit({"x": values, "y": values.copy()})
        assert classifier.classify(0.0) == "x"


class TestDecisionThreshold:
    def test_threshold_lies_between_class_means(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng, mu_a=0.0, mu_b=4.0))
        threshold = classifier.decision_threshold("a", "b")
        assert 1.0 < threshold < 3.0

    def test_threshold_unknown_label_rejected(self, rng):
        classifier = KDEBayesClassifier().fit(make_training(rng))
        with pytest.raises(TrainingError):
            classifier.decision_threshold("a", "zzz")
