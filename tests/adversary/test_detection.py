"""Tests for the attack pipeline and detection-rate measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    EntropyFeature,
    MeanFeature,
    VarianceFeature,
    empirical_detection_rate,
    evaluate_attack,
    extract_feature_samples,
    slice_into_samples,
    train_classifier,
)
from repro.core import GaussianPIATModel
from repro.exceptions import AnalysisError


@pytest.fixture
def cit_model():
    """Analytic PIAT model matching the calibrated CIT / no-cross-traffic setup."""
    return GaussianPIATModel.from_components(
        gw_variance_low=4.5e-10, gw_variance_high=8.1e-10, tau=0.01
    )


def labelled_intervals(model, rng, n_intervals):
    return {
        "low": model.sample_intervals("low", n_intervals, rng=rng),
        "high": model.sample_intervals("high", n_intervals, rng=rng),
    }


class TestSlicing:
    def test_non_overlapping_slices(self):
        intervals = np.arange(100.0)
        samples = slice_into_samples(intervals, 30)
        assert len(samples) == 3
        assert np.array_equal(samples[0], np.arange(30.0))
        assert np.array_equal(samples[2], np.arange(60.0, 90.0))

    def test_overlapping_slices_double_the_count(self):
        intervals = np.arange(100.0)
        assert len(slice_into_samples(intervals, 20, overlap=True)) == 9

    def test_max_samples_cap(self):
        assert len(slice_into_samples(np.arange(100.0), 10, max_samples=4)) == 4

    def test_validation(self):
        with pytest.raises(AnalysisError):
            slice_into_samples(np.arange(5.0), 10)
        with pytest.raises(AnalysisError):
            slice_into_samples(np.arange(5.0), 0)
        with pytest.raises(AnalysisError):
            slice_into_samples(np.zeros((2, 2)), 1)

    def test_extract_feature_samples(self):
        intervals = np.tile([1.0, 2.0, 3.0], 10)
        values = extract_feature_samples(intervals, MeanFeature(), 3)
        assert values.shape == (10,)
        assert np.allclose(values, 2.0)


class TestTrainAndClassify:
    def test_variance_feature_detects_rate_with_large_samples(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 40_000)
        data_test = labelled_intervals(cit_model, rng, 40_000)
        result = evaluate_attack(
            data_train, data_test, VarianceFeature(), sample_size=1000
        )
        assert result.detection_rate > 0.9
        assert result.trials == 80
        assert set(result.per_class_rates) == {"low", "high"}

    def test_entropy_feature_detects_rate_with_large_samples(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 40_000)
        data_test = labelled_intervals(cit_model, rng, 40_000)
        result = evaluate_attack(
            data_train, data_test, EntropyFeature(bin_width=5e-6), sample_size=1000
        )
        assert result.detection_rate > 0.85

    def test_mean_feature_stays_near_random_guessing(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 40_000)
        data_test = labelled_intervals(cit_model, rng, 40_000)
        result = evaluate_attack(data_train, data_test, MeanFeature(), sample_size=1000)
        assert result.detection_rate < 0.7

    def test_detection_improves_with_sample_size(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 60_000)
        data_test = labelled_intervals(cit_model, rng, 60_000)
        small = evaluate_attack(data_train, data_test, VarianceFeature(), sample_size=50)
        large = evaluate_attack(data_train, data_test, VarianceFeature(), sample_size=2000)
        assert large.detection_rate >= small.detection_rate

    def test_vit_padding_defeats_the_attack(self, rng):
        """Adding timer variance collapses the detection rate toward 50%."""
        vit_model = GaussianPIATModel.from_components(
            gw_variance_low=4.5e-10,
            gw_variance_high=8.1e-10,
            timer_variance=(1e-3) ** 2,
            tau=0.01,
        )
        data_train = labelled_intervals(vit_model, rng, 40_000)
        data_test = labelled_intervals(vit_model, rng, 40_000)
        result = evaluate_attack(data_train, data_test, VarianceFeature(), sample_size=1000)
        assert result.detection_rate < 0.65

    def test_confusion_matrix_counts_match_trials(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 20_000)
        data_test = labelled_intervals(cit_model, rng, 20_000)
        result = evaluate_attack(data_train, data_test, VarianceFeature(), sample_size=500)
        total = sum(sum(row.values()) for row in result.confusion.values())
        assert total == result.trials == len(result.correct_flags)

    def test_confidence_interval_brackets_rate(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 20_000)
        data_test = labelled_intervals(cit_model, rng, 20_000)
        result = evaluate_attack(data_train, data_test, VarianceFeature(), sample_size=500)
        ci = result.confidence_interval(rng=rng)
        assert ci.lower <= result.detection_rate <= ci.upper

    def test_train_classifier_needs_enough_samples(self, cit_model, rng):
        data = labelled_intervals(cit_model, rng, 1000)
        with pytest.raises(AnalysisError):
            train_classifier(data, VarianceFeature(), sample_size=900)

    def test_empirical_detection_needs_test_samples(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 20_000)
        classifier = train_classifier(data_train, VarianceFeature(), sample_size=500)
        short_test = labelled_intervals(cit_model, rng, 100)
        with pytest.raises(AnalysisError):
            empirical_detection_rate(classifier, short_test, VarianceFeature(), sample_size=500)

    def test_priors_forwarded(self, cit_model, rng):
        data_train = labelled_intervals(cit_model, rng, 20_000)
        classifier = train_classifier(
            data_train, VarianceFeature(), sample_size=500, priors={"low": 0.9, "high": 0.1}
        )
        assert classifier.is_fitted
