"""Tests for the passive network tap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import Tap
from repro.exceptions import AnalysisError
from repro.network.link import CountingSink
from repro.padding import ConstantInterval, SenderGateway
from repro.traffic import Packet


class TestTapBasics:
    def test_records_observation_times(self, simulator):
        tap = Tap(simulator)
        for t in (0.5, 1.0, 1.5):
            simulator.schedule_at(t, tap.observe, Packet(created_at=0.0))
        simulator.run()
        assert len(tap) == 3
        assert np.allclose(tap.timestamps, [0.5, 1.0, 1.5])
        assert np.allclose(tap.intervals(), [0.5, 0.5])

    def test_callable_interface(self, simulator):
        tap = Tap(simulator)
        tap(Packet(created_at=0.0))
        assert len(tap) == 1

    def test_intervals_since_discards_warmup(self, simulator):
        tap = Tap(simulator)
        for t in (1.0, 2.0, 10.0, 11.0, 12.0):
            simulator.schedule_at(t, tap.observe, Packet(created_at=0.0))
        simulator.run()
        assert np.allclose(tap.intervals(since=10.0), [1.0, 1.0])

    def test_piat_sample_returns_most_recent(self, simulator):
        tap = Tap(simulator)
        for t in np.arange(0.0, 1.01, 0.01):
            simulator.schedule_at(float(t), tap.observe, Packet(created_at=0.0))
        simulator.run()
        sample = tap.piat_sample(10)
        assert sample.shape == (10,)
        assert np.allclose(sample, 0.01)

    def test_piat_sample_too_large_raises(self, simulator):
        tap = Tap(simulator)
        tap(Packet(created_at=0.0))
        with pytest.raises(AnalysisError):
            tap.piat_sample(5)
        with pytest.raises(AnalysisError):
            tap.piat_sample(0)

    def test_observed_rate(self, simulator):
        tap = Tap(simulator)
        for t in np.arange(0.0, 2.001, 0.01):
            simulator.schedule_at(float(t), tap.observe, Packet(created_at=0.0))
        simulator.run()
        assert tap.observed_rate_pps() == pytest.approx(100.0, rel=1e-6)

    def test_rate_requires_observations(self, simulator):
        with pytest.raises(AnalysisError):
            Tap(simulator).observed_rate_pps()

    def test_reset(self, simulator):
        tap = Tap(simulator)
        tap(Packet(created_at=0.0))
        tap.reset()
        assert len(tap) == 0

    def test_negative_capture_jitter_rejected(self, simulator):
        with pytest.raises(AnalysisError):
            Tap(simulator, capture_jitter_std=-1.0)


class TestCaptureJitter:
    def test_jitter_inflates_interval_variance(self, simulator, rng):
        clean = Tap(simulator)
        noisy = Tap(simulator, capture_jitter_std=1e-4, rng=rng)
        for t in np.arange(0.0, 10.0, 0.01):
            simulator.schedule_at(float(t), clean.observe, Packet(created_at=0.0))
            simulator.schedule_at(float(t), noisy.observe, Packet(created_at=0.0))
        simulator.run()
        assert np.std(noisy.intervals()) > np.std(clean.intervals())
        assert np.std(clean.intervals()) < 1e-9


class TestTapOnGatewayOutput:
    def test_tap_sees_exactly_the_padded_stream(self, simulator, streams):
        """Integration: tap at GW1 egress observes the padded (timer) rate."""
        receiver = CountingSink()
        tap = Tap(simulator)

        def egress(packet):
            tap.observe(packet)
            receiver(packet)

        gateway = SenderGateway(
            simulator, ConstantInterval(0.01), output=egress, rng=streams.get("gw")
        )
        gateway.start()
        simulator.run(until=10.0)
        assert len(tap) == receiver.total == gateway.packets_sent
        assert tap.observed_rate_pps() == pytest.approx(100.0, rel=0.02)

    def test_tap_ignores_packet_contents(self, simulator):
        """The tap must not read kind/flow_id: only timestamps are stored."""
        tap = Tap(simulator)
        tap(Packet(created_at=0.0, flow_id="secret-flow"))
        stored = tap.timestamps
        assert stored.dtype == float
        assert not hasattr(tap, "packets")
