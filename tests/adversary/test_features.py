"""Tests for the feature statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    EntropyFeature,
    InterquartileRangeFeature,
    MeanFeature,
    MedianAbsoluteDeviationFeature,
    VarianceFeature,
    default_features,
    get_feature,
)
from repro.exceptions import AnalysisError


class TestPaperFeatures:
    def test_mean_feature(self):
        assert MeanFeature().compute([0.01, 0.02, 0.03]) == pytest.approx(0.02)

    def test_variance_feature_unbiased(self):
        assert VarianceFeature().compute([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_entropy_feature_distinguishes_spread(self, rng):
        feature = EntropyFeature(bin_width=1e-5)
        narrow = feature.compute(rng.normal(0.01, 2e-5, size=1000))
        wide = feature.compute(rng.normal(0.01, 8e-5, size=1000))
        assert wide > narrow

    def test_entropy_default_bin_width(self):
        feature = EntropyFeature()
        assert feature.bin_width == pytest.approx(0.01 / 200.0)

    def test_entropy_invalid_bin_width(self):
        with pytest.raises(AnalysisError):
            EntropyFeature(bin_width=0.0)

    def test_features_are_callable(self):
        assert MeanFeature()([1.0, 3.0]) == 2.0

    def test_default_features_registry(self):
        features = default_features()
        assert set(features) == {"mean", "variance", "entropy"}
        assert features["mean"].name == "mean"

    def test_min_sample_sizes_enforced(self):
        with pytest.raises(AnalysisError):
            VarianceFeature().compute([1.0])
        with pytest.raises(AnalysisError):
            MeanFeature().compute([])
        with pytest.raises(AnalysisError):
            InterquartileRangeFeature().compute([1.0, 2.0, 3.0])

    def test_two_dimensional_sample_rejected(self):
        with pytest.raises(AnalysisError):
            MeanFeature().compute(np.zeros((2, 2)))


class TestExtensionFeatures:
    def test_mad(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        assert MedianAbsoluteDeviationFeature().compute(data) == pytest.approx(1.0)

    def test_iqr(self):
        data = np.arange(1.0, 101.0)
        value = InterquartileRangeFeature().compute(data)
        assert value == pytest.approx(np.percentile(data, 75) - np.percentile(data, 25))

    def test_robust_features_ignore_outliers(self, rng):
        base = rng.normal(0.01, 1e-5, size=1000)
        polluted = np.concatenate([base, [1.0]])
        mad = MedianAbsoluteDeviationFeature()
        variance = VarianceFeature()
        assert mad.compute(polluted) == pytest.approx(mad.compute(base), rel=0.05)
        assert variance.compute(polluted) > 100 * variance.compute(base)


class TestRegistry:
    @pytest.mark.parametrize("name", ["mean", "variance", "entropy", "mad", "iqr"])
    def test_lookup_by_name(self, name):
        assert get_feature(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert get_feature("  Variance ").name == "variance"

    def test_unknown_feature_rejected(self):
        with pytest.raises(AnalysisError):
            get_feature("kurtosis")

    def test_entropy_bin_width_forwarded(self):
        assert get_feature("entropy", entropy_bin_width=1e-6).bin_width == 1e-6


class TestDiscriminationProperty:
    @given(ratio=st.floats(min_value=1.5, max_value=16.0))
    @settings(max_examples=20, deadline=None)
    def test_dispersion_features_separate_variance_classes(self, ratio):
        """Variance/entropy grow with the underlying spread; the mean does not."""
        rng = np.random.default_rng(1234)
        low = rng.normal(0.01, 2e-5, size=2000)
        high = rng.normal(0.01, 2e-5 * np.sqrt(ratio), size=2000)
        assert VarianceFeature().compute(high) > VarianceFeature().compute(low)
        entropy = EntropyFeature(bin_width=1e-5)
        assert entropy.compute(high) > entropy.compute(low)
        assert MeanFeature().compute(high) == pytest.approx(MeanFeature().compute(low), rel=0.01)
