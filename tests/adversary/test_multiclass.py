"""Tests for the multi-rate extension and confusion-matrix utilities."""

from __future__ import annotations

import pytest

from repro.adversary import (
    VarianceFeature,
    confusion_matrix,
    evaluate_multiclass_attack,
    per_class_detection_rates,
)
from repro.adversary.multiclass import (
    overall_detection_rate,
    random_guessing_rate,
    sorted_labels,
)
from repro.exceptions import AnalysisError


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert matrix["a"]["a"] == 1
        assert matrix["a"]["b"] == 1
        assert matrix["b"]["b"] == 2
        assert matrix["b"]["a"] == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            confusion_matrix(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            confusion_matrix([], [])

    def test_per_class_rates(self):
        matrix = confusion_matrix(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        rates = per_class_detection_rates(matrix)
        assert rates["a"] == pytest.approx(0.5)
        assert rates["b"] == pytest.approx(1.0)

    def test_overall_rate(self):
        matrix = confusion_matrix(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert overall_detection_rate(matrix) == pytest.approx(0.75)

    def test_numeric_labels_order_by_value_not_lexicographically(self):
        """Regression: "10" must sort after "2"/"5", not before them.

        Rate-class labels are numeric strings; lexicographic ordering put
        the 10-pps row first and scrambled every rendered matrix.
        """
        matrix = confusion_matrix(["2", "5", "10"], ["2", "5", "10"])
        assert list(matrix) == ["2", "5", "10"]
        assert all(list(row) == ["2", "5", "10"] for row in matrix.values())

    def test_sorted_labels_numeric_and_fallback(self):
        assert sorted_labels({"10", "2", "5.5"}) == ["2", "5.5", "10"]
        # Equal values in different spellings stay total and deterministic.
        assert sorted_labels({"2.0", "2"}) == ["2", "2.0"]
        # A single non-numeric label falls back to plain string order.
        assert sorted_labels({"10", "2", "low"}) == ["10", "2", "low"]


class TestRandomGuessing:
    def test_equal_priors(self):
        assert random_guessing_rate(2) == 0.5
        assert random_guessing_rate(4) == 0.25

    def test_unequal_priors(self):
        assert random_guessing_rate(2, [0.8, 0.2]) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            random_guessing_rate(1)
        with pytest.raises(AnalysisError):
            random_guessing_rate(2, [0.5, 0.6])
        with pytest.raises(AnalysisError):
            random_guessing_rate(3, [0.5, 0.5])


class TestMulticlassAttack:
    def test_four_rate_extension(self, rng):
        """Section 6: the technique extends to m > 2 rates via more training."""
        # Build four classes with increasing PIAT variance (more payload ->
        # more gateway disturbance), sampled from the Gaussian model.
        sigmas = {"r10": 2.1e-5, "r20": 2.5e-5, "r40": 3.0e-5, "r80": 3.7e-5}
        train = {k: rng.normal(0.01, s, size=60_000) for k, s in sigmas.items()}
        test = {k: rng.normal(0.01, s, size=60_000) for k, s in sigmas.items()}
        result = evaluate_multiclass_attack(
            train, test, VarianceFeature(), sample_size=2000
        )
        assert result.trials == 4 * 30
        # Better than random guessing among four classes, but harder than two.
        assert result.detection_rate > 2.0 * random_guessing_rate(4)
        assert set(result.per_class_rates) == set(sigmas)

    def test_rejects_two_class_input(self, rng):
        data = {
            "low": rng.normal(0.01, 1e-5, size=5000),
            "high": rng.normal(0.01, 2e-5, size=5000),
        }
        with pytest.raises(AnalysisError):
            evaluate_multiclass_attack(data, data, VarianceFeature(), sample_size=500)
