"""Tests for Gaussian kernel density estimation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.exceptions import AnalysisError
from repro.stats import GaussianKDE, scott_bandwidth, silverman_bandwidth


class TestBandwidthRules:
    def test_silverman_matches_formula_for_normal_data(self, rng):
        data = rng.normal(0.0, 2.0, size=1000)
        h = silverman_bandwidth(data)
        std = np.std(data, ddof=1)
        q75, q25 = np.percentile(data, [75, 25])
        expected = 0.9 * min(std, (q75 - q25) / 1.34) * 1000 ** (-0.2)
        assert h == pytest.approx(expected)

    def test_scott_matches_formula(self, rng):
        data = rng.normal(0.0, 1.0, size=500)
        assert scott_bandwidth(data) == pytest.approx(1.06 * np.std(data, ddof=1) * 500 ** (-0.2))

    def test_degenerate_sample_gives_tiny_positive_bandwidth(self):
        data = np.full(50, 3.0)
        assert silverman_bandwidth(data) > 0.0
        assert scott_bandwidth(data) > 0.0

    def test_bandwidth_needs_two_points(self):
        with pytest.raises(AnalysisError):
            silverman_bandwidth([1.0])
        with pytest.raises(AnalysisError):
            scott_bandwidth([1.0])


class TestGaussianKDE:
    def test_pdf_integrates_to_one(self, rng):
        data = rng.normal(5.0, 2.0, size=400)
        kde = GaussianKDE(data)
        grid = kde.grid(2001, padding=6.0)
        integral = np.trapezoid(kde.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_recovers_normal_density(self, rng):
        data = rng.normal(0.0, 1.0, size=5000)
        kde = GaussianKDE(data)
        xs = np.linspace(-2.0, 2.0, 21)
        estimated = kde.pdf(xs)
        truth = sps.norm.pdf(xs)
        assert np.max(np.abs(estimated - truth)) < 0.05

    def test_logpdf_is_log_of_pdf(self, rng):
        data = rng.normal(0.0, 1.0, size=200)
        kde = GaussianKDE(data)
        xs = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(np.log(kde.pdf(xs)), kde.logpdf(xs))

    def test_logpdf_finite_far_in_the_tail(self, rng):
        data = rng.normal(0.0, 1e-6, size=100)
        kde = GaussianKDE(data)
        value = kde.logpdf(1.0)  # a million bandwidths away
        assert np.isfinite(value)
        assert value < -1e3

    def test_scalar_and_array_interfaces(self, rng):
        kde = GaussianKDE(rng.normal(size=100))
        assert isinstance(kde.pdf(0.0), float)
        assert kde.pdf(np.zeros(3)).shape == (3,)

    def test_cdf_monotone_and_bounded(self, rng):
        kde = GaussianKDE(rng.normal(size=300))
        xs = np.linspace(-4, 4, 41)
        values = kde.cdf(xs)
        assert np.all(np.diff(values) >= 0.0)
        assert values[0] >= 0.0 and values[-1] <= 1.0
        assert kde.cdf(10.0) == pytest.approx(1.0, abs=1e-6)

    def test_explicit_bandwidth(self, rng):
        data = rng.normal(size=100)
        kde = GaussianKDE(data, bandwidth=0.5)
        assert kde.bandwidth == 0.5

    def test_bimodal_data_shows_two_modes(self, rng):
        data = np.concatenate([rng.normal(-3, 0.5, 500), rng.normal(3, 0.5, 500)])
        kde = GaussianKDE(data)
        assert kde.pdf(-3.0) > kde.pdf(0.0)
        assert kde.pdf(3.0) > kde.pdf(0.0)

    def test_validation(self, rng):
        with pytest.raises(AnalysisError):
            GaussianKDE([1.0])
        with pytest.raises(AnalysisError):
            GaussianKDE(np.zeros((3, 3)))
        with pytest.raises(AnalysisError):
            GaussianKDE([1.0, np.nan])
        with pytest.raises(AnalysisError):
            GaussianKDE(rng.normal(size=10), bandwidth=-1.0)
        with pytest.raises(AnalysisError):
            GaussianKDE(rng.normal(size=10), bandwidth="unknown-rule")
        with pytest.raises(AnalysisError):
            GaussianKDE(rng.normal(size=10)).grid(1)

    def test_n_property(self, rng):
        assert GaussianKDE(rng.normal(size=77)).n == 77
