"""Tests for bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.stats import bootstrap_ci, bootstrap_detection_rate_ci


class TestBootstrapCI:
    def test_interval_brackets_the_estimate(self, rng):
        data = rng.normal(10.0, 1.0, size=200)
        result = bootstrap_ci(data, rng=rng)
        assert result.lower <= result.estimate <= result.upper
        assert result.contains(result.estimate)

    def test_interval_covers_true_mean_for_well_behaved_data(self, rng):
        data = rng.normal(5.0, 2.0, size=500)
        result = bootstrap_ci(data, confidence=0.99, rng=rng)
        assert result.contains(5.0)

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(size=30), rng=rng)
        large = bootstrap_ci(rng.normal(size=3000), rng=rng)
        assert large.width < small.width

    def test_custom_statistic(self, rng):
        data = rng.normal(size=300)
        result = bootstrap_ci(data, statistic=np.median, rng=rng)
        assert result.estimate == pytest.approx(float(np.median(data)))

    def test_reproducible_with_seeded_rng(self):
        data = np.arange(50.0)
        a = bootstrap_ci(data, rng=np.random.default_rng(3))
        b = bootstrap_ci(data, rng=np.random.default_rng(3))
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_reproducible_without_rng(self):
        # Regression: the old implicit fallback was an *unseeded* generator,
        # so two identical calls returned different intervals.
        data = np.arange(50.0)
        a = bootstrap_ci(data)
        b = bootstrap_ci(data)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_seed_parameter_reproduces_and_varies_the_interval(self):
        data = np.arange(50.0)
        a = bootstrap_ci(data, seed=7)
        b = bootstrap_ci(data, seed=7)
        c = bootstrap_ci(data, seed=8)
        assert (a.lower, a.upper) == (b.lower, b.upper)
        assert (a.lower, a.upper) != (c.lower, c.upper)

    def test_explicit_rng_wins_over_seed(self):
        data = np.arange(50.0)
        a = bootstrap_ci(data, rng=np.random.default_rng(3), seed=7)
        b = bootstrap_ci(data, rng=np.random.default_rng(3), seed=8)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self, rng):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0], rng=rng)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], confidence=1.5, rng=rng)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], resamples=5, rng=rng)


class TestDetectionRateCI:
    def test_rate_and_bounds(self, rng):
        flags = [True] * 80 + [False] * 20
        result = bootstrap_detection_rate_ci(flags, rng=rng)
        assert result.estimate == pytest.approx(0.8)
        assert 0.7 < result.lower < 0.8 < result.upper < 0.9

    def test_all_correct(self, rng):
        result = bootstrap_detection_rate_ci([True] * 50, rng=rng)
        assert result.estimate == 1.0
        assert result.upper == 1.0

    def test_non_boolean_rejected(self, rng):
        with pytest.raises(AnalysisError):
            bootstrap_detection_rate_ci([0.5, 0.7], rng=rng)

    def test_too_few_trials_rejected(self, rng):
        with pytest.raises(AnalysisError):
            bootstrap_detection_rate_ci([True], rng=rng)

    def test_reproducible_without_rng(self):
        flags = [True] * 30 + [False] * 20
        a = bootstrap_detection_rate_ci(flags)
        b = bootstrap_detection_rate_ci(flags)
        assert (a.lower, a.upper) == (b.lower, b.upper)
