"""Tests for entropy estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError
from repro.stats import histogram_entropy, moddemeijer_entropy, normal_differential_entropy


class TestNormalDifferentialEntropy:
    def test_standard_normal_value(self):
        # 0.5 * ln(2 pi e) ~= 1.4189
        assert normal_differential_entropy(1.0) == pytest.approx(1.41894, abs=1e-4)

    def test_monotone_in_variance(self):
        assert normal_differential_entropy(4.0) > normal_differential_entropy(1.0)

    def test_invalid_variance(self):
        with pytest.raises(AnalysisError):
            normal_differential_entropy(0.0)


class TestHistogramEntropy:
    def test_estimates_normal_entropy(self, rng):
        sigma = 2.0
        data = rng.normal(0.0, sigma, size=100_000)
        estimate = histogram_entropy(data, bin_width=0.05, include_bin_width_term=True)
        assert estimate == pytest.approx(normal_differential_entropy(sigma**2), abs=0.05)

    def test_estimates_uniform_entropy(self, rng):
        # Uniform on [0, 4]: differential entropy = ln(4)
        data = rng.uniform(0.0, 4.0, size=100_000)
        estimate = histogram_entropy(data, bin_width=0.05, include_bin_width_term=True)
        assert estimate == pytest.approx(np.log(4.0), abs=0.05)

    def test_bin_width_term_is_additive_constant(self, rng):
        data = rng.normal(size=5000)
        with_term = histogram_entropy(data, bin_width=0.1, include_bin_width_term=True)
        without = histogram_entropy(data, bin_width=0.1, include_bin_width_term=False)
        assert with_term - without == pytest.approx(np.log(0.1))

    def test_degenerate_sample(self):
        data = np.full(100, 2.5)
        assert histogram_entropy(data, bin_width=0.1, include_bin_width_term=False) == 0.0

    def test_automatic_binning(self, rng):
        data = rng.normal(size=2000)
        value = histogram_entropy(data)
        assert np.isfinite(value)

    def test_validation(self, rng):
        data = rng.normal(size=100)
        with pytest.raises(AnalysisError):
            histogram_entropy(data, bin_width=0.1, bins=10)
        with pytest.raises(AnalysisError):
            histogram_entropy(data, bin_width=-0.1)
        with pytest.raises(AnalysisError):
            histogram_entropy([1.0])
        with pytest.raises(AnalysisError):
            histogram_entropy(np.array([[1.0, 2.0]]))
        with pytest.raises(AnalysisError):
            histogram_entropy([1.0, np.inf])


class TestModdemeijerEntropy:
    def test_distinguishes_variances(self, rng):
        """Larger spread -> larger histogram entropy (the attack's core signal)."""
        bin_width = 0.01
        narrow = moddemeijer_entropy(rng.normal(0.0, 0.05, size=2000), bin_width)
        wide = moddemeijer_entropy(rng.normal(0.0, 0.10, size=2000), bin_width)
        assert wide > narrow

    def test_robust_to_a_single_outlier(self, rng):
        """An extreme outlier barely moves the entropy but inflates the variance."""
        bin_width = 0.01
        base = rng.normal(0.0, 0.05, size=2000)
        polluted = np.concatenate([base, [50.0]])
        entropy_shift = abs(
            moddemeijer_entropy(polluted, bin_width) - moddemeijer_entropy(base, bin_width)
        )
        variance_ratio = np.var(polluted, ddof=1) / np.var(base, ddof=1)
        assert entropy_shift < 0.05       # entropy: essentially unchanged
        assert variance_ratio > 100.0     # variance: catastrophically inflated

    def test_scale_equivariance_through_bins(self, rng):
        """Doubling both the data spread and the bin width leaves the estimate unchanged."""
        data = rng.normal(0.0, 1.0, size=5000)
        a = moddemeijer_entropy(data, 0.05)
        b = moddemeijer_entropy(2.0 * data, 0.10)
        assert a == pytest.approx(b, abs=0.05)

    @given(scale=st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_entropy_increases_with_scale(self, scale):
        rng = np.random.default_rng(42)
        data = rng.normal(0.0, 1.0, size=3000)
        narrow = moddemeijer_entropy(data, 0.05)
        wide = moddemeijer_entropy(data * (1.0 + scale), 0.05)
        assert wide > narrow
