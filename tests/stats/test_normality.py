"""Tests for normality diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.stats import jarque_bera_normality, normality_report, qq_deviation


class TestJarqueBera:
    def test_normal_data_not_rejected(self, rng):
        data = rng.normal(size=2000)
        _, pvalue = jarque_bera_normality(data)
        assert pvalue > 0.01

    def test_exponential_data_rejected(self, rng):
        data = rng.exponential(size=2000)
        _, pvalue = jarque_bera_normality(data)
        assert pvalue < 0.01

    def test_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            jarque_bera_normality([1.0, 2.0, 3.0])


class TestQQDeviation:
    def test_normal_data_has_small_deviation(self, rng):
        assert qq_deviation(rng.normal(5.0, 3.0, size=2000)) < 0.1

    def test_heavy_tailed_data_has_large_deviation(self, rng):
        data = rng.standard_t(df=1, size=2000)  # Cauchy-like
        assert qq_deviation(data) > 0.3

    def test_constant_sample_rejected(self):
        with pytest.raises(AnalysisError):
            qq_deviation(np.full(100, 1.0))


class TestNormalityReport:
    def test_report_fields_for_normal_data(self, rng):
        data = rng.normal(10.0, 2.0, size=5000)
        report = normality_report(data)
        assert report.size == 5000
        assert report.mean == pytest.approx(10.0, abs=0.1)
        assert report.std == pytest.approx(2.0, rel=0.05)
        assert abs(report.skewness) < 0.2
        assert abs(report.excess_kurtosis) < 0.3
        assert report.looks_normal

    def test_report_flags_exponential_data(self, rng):
        report = normality_report(rng.exponential(size=5000))
        assert not report.looks_normal
        assert report.skewness > 1.0

    def test_simulated_padded_piat_looks_normal(self, rng):
        """The Gaussian PIAT assumption of Section 4 holds for our traces."""
        from repro.traffic import generate_piat_trace

        trace = generate_piat_trace(5000, mean_interval=0.01, jitter_std=3e-5, rng=rng)
        report = normality_report(trace.intervals())
        assert report.looks_normal

    def test_non_finite_rejected(self):
        with pytest.raises(AnalysisError):
            normality_report(np.array([1.0, np.nan] * 10))
