"""Tests for descriptive statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError
from repro.stats import (
    coefficient_of_variation,
    sample_mean,
    sample_moments,
    sample_variance,
    standard_error_of_mean,
    summarize,
)


class TestBasicStatistics:
    def test_sample_mean(self):
        assert sample_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_sample_variance_uses_n_minus_1(self):
        # Var([1,2,3]) with ddof=1 is exactly 1.0
        assert sample_variance([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_sample_moments_consistent(self):
        data = np.array([0.5, 1.5, 2.5, 10.0])
        mean, variance = sample_moments(data)
        assert mean == pytest.approx(sample_mean(data))
        assert variance == pytest.approx(sample_variance(data))

    def test_standard_error_of_mean(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert standard_error_of_mean(data) == pytest.approx(np.std(data, ddof=1) / 2.0)

    def test_coefficient_of_variation(self):
        data = np.array([2.0, 4.0, 6.0])
        assert coefficient_of_variation(data) == pytest.approx(np.std(data, ddof=1) / 4.0)

    def test_coefficient_of_variation_zero_mean_rejected(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation([-1.0, 1.0])


class TestValidation:
    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            sample_mean([])

    def test_variance_needs_two_points(self):
        with pytest.raises(AnalysisError):
            sample_variance([1.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(AnalysisError):
            sample_mean(np.zeros((2, 2)))

    def test_non_finite_rejected(self):
        with pytest.raises(AnalysisError):
            sample_mean([1.0, np.nan])
        with pytest.raises(AnalysisError):
            sample_variance([1.0, np.inf])


class TestSummarize:
    def test_summary_fields(self):
        data = np.arange(1.0, 101.0)
        summary = summarize(data)
        assert summary.size == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.iqr == pytest.approx(summary.q75 - summary.q25)

    def test_summary_std_matches_variance(self):
        data = np.array([1.0, 5.0, 9.0, 13.0])
        summary = summarize(data)
        assert summary.std**2 == pytest.approx(summary.variance)


class TestProperties:
    @given(
        data=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=200
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_variance_non_negative_and_matches_numpy(self, data):
        variance = sample_variance(data)
        assert variance >= 0.0
        assert variance == pytest.approx(float(np.var(data, ddof=1)), rel=1e-9, abs=1e-12)

    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
        shift=st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_shift_equivariance(self, data, shift):
        shifted = [x + shift for x in data]
        assert sample_mean(shifted) == pytest.approx(sample_mean(data) + shift, abs=1e-9)

    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50),
        shift=st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_variance_shift_invariance(self, data, shift):
        shifted = [x + shift for x in data]
        assert sample_variance(shifted) == pytest.approx(sample_variance(data), abs=1e-7)
