"""Integration tests for the figure experiments.

These use small configurations (analytic or short simulation captures) so the
whole module runs in tens of seconds; the benchmarks exercise the larger,
figure-fidelity configurations.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    CollectionMode,
    Fig4Config,
    Fig4Experiment,
    Fig5Config,
    Fig5Experiment,
    Fig6Config,
    Fig6Experiment,
    Fig8Config,
    Fig8Experiment,
)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig4Config(
            sample_sizes=(50, 200, 1000),
            trials=12,
            mode=CollectionMode.SIMULATION,
            seed=11,
        )
        return Fig4Experiment(config).run()

    def test_piat_distributions_match_figure_4a(self, result):
        """Same mean, wider under the high rate, approximately normal."""
        low, high = result.piat_stats["low"], result.piat_stats["high"]
        assert low["mean"] == pytest.approx(high["mean"], rel=1e-3)
        assert high["std"] > low["std"]
        assert low["looks_normal"] and high["looks_normal"]
        assert result.r_measured == pytest.approx(result.r_model, rel=0.3)

    def test_detection_curves_match_figure_4b(self, result):
        """Mean stays near 50%; variance/entropy rise to ~100% by n=1000."""
        for feature in ("variance", "entropy"):
            rates = result.empirical_detection_rate[feature]
            assert rates[1000] > 0.9
            assert rates[1000] >= rates[50] - 0.05
        assert result.empirical_detection_rate["mean"][1000] < 0.75

    def test_empirical_tracks_theory(self, result):
        for feature in ("variance", "entropy"):
            for n in (200, 1000):
                empirical = result.empirical_detection_rate[feature][n]
                theory = result.theoretical_detection_rate[feature][n]
                assert empirical == pytest.approx(theory, abs=0.25)

    def test_report_renders(self, result):
        text = result.to_text()
        assert "Figure 4" in text
        assert "variance ratio" in text
        rows = list(result.rows())
        assert len(rows) == 3 * 3  # features x sample sizes

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig4Config(sample_sizes=())
        with pytest.raises(ConfigurationError):
            Fig4Config(sample_sizes=(1,))
        with pytest.raises(ConfigurationError):
            Fig4Config(trials=1)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig5Config(
            sigma_t_values=(0.0, 1e-3),
            sample_size=500,
            trials=10,
            mode=CollectionMode.ANALYTIC,
            seed=11,
        )
        return Fig5Experiment(config).run()

    def test_vit_collapses_detection(self, result):
        """Figure 5(a): detection drops toward 50% as sigma_T grows."""
        for feature in ("variance", "entropy"):
            rates = result.empirical_detection_rate[feature]
            assert rates[0.0] > 0.85
            assert rates[1e-3] < 0.7
        assert result.variance_ratios[1e-3] < result.variance_ratios[0.0]

    def test_required_sample_explodes(self, result):
        """Figure 5(b): the attack needs astronomically many packets under VIT."""
        required = result.required_sample_for_target["variance"]
        assert required[1e-3] > 1e8
        assert required[1e-6] < 1e5

    def test_report_renders(self, result):
        text = result.to_text()
        assert "Figure 5(a)" in text and "Figure 5(b)" in text

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig5Config(sigma_t_values=())
        with pytest.raises(ConfigurationError):
            Fig5Config(sigma_t_values=(-1e-3,))
        with pytest.raises(ConfigurationError):
            Fig5Config(target_detection_rate=0.4)
        with pytest.raises(ConfigurationError):
            Fig5Config(features=())

    def test_scenario_for_sigma(self):
        config = Fig5Config()
        assert config.scenario_for(0.0).policy.kind == "CIT"
        assert config.scenario_for(1e-3).policy.kind == "VIT"

    def test_fine_grained_sigma_values_do_not_collide(self):
        """Regression: grid keys carry the exact sigma_T, not the 3-sig-digit
        policy display name, so near-identical spreads stay distinct."""
        config = Fig5Config(
            sigma_t_values=(1e-3, 1.0004e-3),
            sample_size=100,
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=11,
        )
        cells = Fig5Experiment(config).cells()
        assert len({cell.key for cell in cells}) == 2
        result = Fig5Experiment(config).run()
        assert set(result.variance_ratios) == {1e-3, 1.0004e-3}

    def test_extension_features_run_without_fake_theory(self):
        """mad/iqr are measured empirically but get NaN in the theorem column."""
        import math

        config = Fig5Config(
            sigma_t_values=(0.0,),
            sample_size=100,
            trials=4,
            features=("variance", "mad"),
            mode=CollectionMode.ANALYTIC,
            seed=11,
        )
        result = Fig5Experiment(config).run()
        assert 0.0 <= result.empirical_detection_rate["mad"][0.0] <= 1.0
        assert math.isnan(result.theoretical_detection_rate["mad"][0.0])
        assert not math.isnan(result.theoretical_detection_rate["variance"][0.0])


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig6Config(
            utilizations=(0.05, 0.4),
            sample_size=300,
            trials=8,
            mode=CollectionMode.SIMULATION,
            seed=11,
        )
        return Fig6Experiment(config).run()

    def test_detection_decreases_with_utilization(self, result):
        for feature in ("variance", "entropy"):
            rates = result.empirical_detection_rate[feature]
            assert rates[0.05] > rates[0.4] - 0.1
            assert rates[0.05] > 0.7
        assert result.variance_ratios[0.4] < result.variance_ratios[0.05]

    def test_mean_feature_stays_uninformative(self, result):
        assert all(rate < 0.75 for rate in result.empirical_detection_rate["mean"].values())

    def test_integer_utilizations_are_accepted(self):
        """Regression: int axis values must key the same cells assemble reads."""
        config = Fig6Config(
            utilizations=(0, 0.3),
            sample_size=100,
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=11,
        )
        result = Fig6Experiment(config).run()
        assert set(result.empirical_detection_rate["variance"]) == {0, 0.3}

    def test_report_renders(self, result):
        assert "Figure 6" in result.to_text()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig6Config(utilizations=())
        with pytest.raises(ConfigurationError):
            Fig6Config(utilizations=(1.2,))
        with pytest.raises(ConfigurationError):
            Fig6Config(scenario=Fig6Config().scenario.with_cross_utilization(0.0), utilizations=(0.1,), sample_size=1)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig8Config(
            networks=("campus", "wan"),
            hours=(2, 14),
            sample_size=400,
            trials=30,
            mode=CollectionMode.HYBRID,
            seed=11,
        )
        return Fig8Experiment(config).run()

    def test_campus_detection_exceeds_wan(self, result):
        """Figure 8: the campus path leaves the attack far more effective."""
        for feature in ("variance", "entropy"):
            campus = result.empirical_detection_rate["campus"][feature]
            wan = result.empirical_detection_rate["wan"][feature]
            assert campus[14] >= wan[14] - 0.05
            assert campus[2] > 0.75
        # 10 trials/class gives the empirical rate a granularity of 0.05;
        # require the top of the range without demanding a perfect 19/20.
        assert result.empirical_detection_rate["campus"]["variance"][2] >= 0.9

    def test_night_beats_midday(self, result):
        """Detection peaks in the quiet small hours (the paper's 2:00 AM remark)."""
        for network in ("campus", "wan"):
            gap = result.nightly_minus_midday(network, "variance")
            assert gap >= -0.05
        assert result.nightly_minus_midday("wan", "variance") > 0.1

    def test_utilizations_follow_diurnal_profile(self, result):
        for network in ("campus", "wan"):
            utils = result.utilizations[network]
            assert utils[2] < utils[14]

    def test_report_renders(self, result):
        assert "Figure 8" in result.to_text()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig8Config(networks=())
        with pytest.raises(ConfigurationError):
            Fig8Config(networks=("metro",))
        with pytest.raises(ConfigurationError):
            Fig8Config(hours=(25,))
        with pytest.raises(ConfigurationError):
            Fig8Config(hourly_multipliers=(1.0,) * 23)

    def test_utilization_at_hour_helper(self):
        config = Fig8Config()
        assert config.utilization_at("wan", 14) > config.utilization_at("wan", 2)
        assert config.utilization_at("wan", 14) <= 0.99

    def test_hybrid_cells_share_one_gateway_capture_per_network(self):
        config = Fig8Config(
            hours=(2, 8, 14), sample_size=100, trials=4, mode=CollectionMode.HYBRID, seed=11
        )
        cells = Fig8Experiment(config).cells()
        assert all(cell.capture is not None for cell in cells)
        fingerprints = {cell.capture.fingerprint() for cell in cells}
        assert len(fingerprints) == 2  # one per network, shared across hours

    def test_analytic_cells_stay_fully_independent(self):
        config = Fig8Config(
            hours=(2, 14), sample_size=100, trials=4, mode=CollectionMode.ANALYTIC, seed=11
        )
        cells = Fig8Experiment(config).cells()
        assert all(cell.capture is None for cell in cells)
        assert len({cell.seed_offsets for cell in cells}) == len(cells)


class TestMultiSeedExperiments:
    """Experiments run over several seeds aggregate to mean ± CI per point."""

    @pytest.fixture(scope="class")
    def results(self):
        config = Fig6Config(
            utilizations=(0.05, 0.4),
            sample_size=150,
            trials=6,
            mode=CollectionMode.ANALYTIC,
            seed=11,
        )
        experiment = Fig6Experiment(config)
        single = experiment.run()
        multi = experiment.run(seeds=(11, 12, 13), confidence=0.95)
        return single, multi

    def test_multi_seed_mean_is_the_seed_average(self, results):
        _, multi = results
        assert multi.n_seeds == 3
        for feature, by_util in multi.empirical_detection_rate.items():
            for rate in by_util.values():
                assert 0.0 <= rate <= 1.0

    def test_ci_brackets_the_mean(self, results):
        _, multi = results
        assert multi.empirical_ci is not None
        assert multi.confidence == 0.95
        for feature, by_util in multi.empirical_ci.items():
            for utilization, (lower, upper) in by_util.items():
                mean = multi.empirical_detection_rate[feature][utilization]
                assert lower <= mean <= upper

    def test_first_seed_matches_the_single_seed_run(self, results):
        single, multi = results
        assert single.n_seeds == 1 and single.empirical_ci is None
        # The multi-seed grid's first seed is the config seed, so its mean
        # moved but stays within the CI ranges around plausible values.
        assert set(single.empirical_detection_rate) == set(multi.empirical_detection_rate)

    def test_multi_seed_report_renders_ci_column(self, results):
        _, multi = results
        text = multi.to_text()
        assert "mean of 3 seeds" in text
        assert "ci95%" in text
        assert "[" in text

    def test_single_seed_report_is_unchanged(self, results):
        single, _ = results
        text = single.to_text()
        assert "mean of" not in text
        assert "ci95%" not in text
