"""Tests for report formatting."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError
from repro.experiments import format_table, render_experiment_report


class TestFormatTable:
    def test_columns_are_aligned(self):
        table = format_table(["name", "value"], [("a", 1.0), ("longer-name", 0.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or len(line) <= len(lines[0]) + 2 for line in lines)
        assert "longer-name" in lines[3]

    def test_number_formatting(self):
        table = format_table(["x"], [(1.23456789,), (1.2e-7,), (float("inf"),), (float("nan"),), (0.0,)])
        assert "1.235" in table
        assert "1.200e-07" in table
        assert "inf" in table
        assert "nan" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([], [])


class TestRenderReport:
    def test_sections_are_included(self):
        report = render_experiment_report(
            "My experiment", [("Section 1", "body one"), ("Section 2", "body two")]
        )
        assert report.startswith("My experiment\n=============")
        assert "Section 1" in report
        assert "body two" in report
        assert report.endswith("\n")

    def test_empty_title_rejected(self):
        with pytest.raises(AnalysisError):
            render_experiment_report("", [])
