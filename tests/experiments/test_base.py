"""Tests for the experiment scenario/collection machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import CollectionMode, ScenarioConfig, collect_labelled_intervals
from repro.experiments.base import apply_analytic_network_noise
from repro.padding import cit_policy, vit_policy


class TestScenarioConfig:
    def test_defaults_match_paper_setup(self):
        scenario = ScenarioConfig()
        assert scenario.policy.kind == "CIT"
        assert scenario.low_rate_pps == 10.0
        assert scenario.high_rate_pps == 40.0
        assert scenario.n_hops == 0
        assert scenario.rate_labels == {"low": 10.0, "high": 40.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(low_rate_pps=40.0, high_rate_pps=10.0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(high_rate_pps=200.0)  # exceeds the 100 pps padded rate
        with pytest.raises(ConfigurationError):
            ScenarioConfig(cross_utilization=0.3)  # cross traffic without hops
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_hops=-1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(warmup_time=-1.0)

    def test_cross_utilization_without_hops_names_both_fields(self):
        """Regression: the error must name the offending fields and values."""
        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioConfig(cross_utilization=0.3, n_hops=0)
        message = str(excinfo.value)
        assert "cross_utilization=0.3" in message
        assert "n_hops=0" in message

    @pytest.mark.parametrize(
        "kwargs, fragments",
        [
            (dict(low_rate_pps=40.0, high_rate_pps=10.0), ("high_rate_pps=10.0", "low_rate_pps=40.0")),
            (dict(high_rate_pps=200.0), ("high_rate_pps=200.0", "padded rate")),
            (dict(n_hops=-1), ("n_hops=-1",)),
            (dict(n_hops=1, cross_utilization=1.5), ("cross_utilization=1.5",)),
            (dict(warmup_time=-1.0), ("warmup_time=-1.0",)),
        ],
    )
    def test_validation_errors_name_field_and_value(self, kwargs, fragments):
        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioConfig(**kwargs)
        for fragment in fragments:
            assert fragment in str(excinfo.value)

    def test_net_variance_zero_without_hops(self):
        assert ScenarioConfig().net_piat_variance() == 0.0

    def test_net_variance_grows_with_utilization_and_hops(self):
        light = ScenarioConfig(n_hops=1, cross_utilization=0.1).net_piat_variance()
        heavy = ScenarioConfig(n_hops=1, cross_utilization=0.4).net_piat_variance()
        long_path = ScenarioConfig(n_hops=10, cross_utilization=0.1).net_piat_variance()
        assert 0.0 < light < heavy
        assert long_path == pytest.approx(10 * light)

    def test_variance_ratio_ordering(self):
        cit = ScenarioConfig(policy=cit_policy())
        vit = ScenarioConfig(policy=vit_policy(sigma_t=1e-3))
        noisy = ScenarioConfig(n_hops=1, cross_utilization=0.4)
        assert cit.variance_ratio() > noisy.variance_ratio() > 1.0
        assert vit.variance_ratio() == pytest.approx(1.0, abs=1e-3)

    def test_with_cross_utilization_copies(self):
        base = ScenarioConfig(n_hops=1)
        loaded = base.with_cross_utilization(0.3)
        assert loaded.cross_utilization == 0.3
        assert base.cross_utilization == 0.0
        assert loaded.policy is base.policy


class TestCollection:
    @pytest.mark.parametrize("mode", list(CollectionMode))
    def test_every_mode_produces_labelled_captures(self, mode):
        scenario = ScenarioConfig(n_hops=1 if mode is CollectionMode.SIMULATION else 0,
                                  cross_utilization=0.1 if mode is CollectionMode.SIMULATION else 0.0)
        capture = collect_labelled_intervals(scenario, 2000, mode=mode, seed=7)
        assert set(capture.intervals) == {"low", "high"}
        for values in capture.intervals.values():
            assert values.shape == (2000,)
            assert np.all(values > 0.0)
            assert np.mean(values) == pytest.approx(0.01, rel=0.02)

    def test_captures_reproduce_with_same_seed(self):
        scenario = ScenarioConfig()
        a = collect_labelled_intervals(scenario, 500, mode=CollectionMode.SIMULATION, seed=3)
        b = collect_labelled_intervals(scenario, 500, mode=CollectionMode.SIMULATION, seed=3)
        assert np.array_equal(a.intervals["high"], b.intervals["high"])

    def test_train_and_test_offsets_are_independent(self):
        scenario = ScenarioConfig()
        train = collect_labelled_intervals(scenario, 500, seed=3, seed_offset="train")
        test = collect_labelled_intervals(scenario, 500, seed=3, seed_offset="test")
        assert not np.array_equal(train.intervals["low"], test.intervals["low"])

    def test_measured_ratio_tracks_model(self):
        scenario = ScenarioConfig()
        capture = collect_labelled_intervals(scenario, 20_000, mode=CollectionMode.SIMULATION, seed=5)
        assert capture.measured_variance_ratio() == pytest.approx(
            scenario.variance_ratio(), rel=0.25
        )
        means = capture.measured_means()
        assert means["low"] == pytest.approx(means["high"], rel=1e-3)

    def test_hybrid_mode_adds_network_variance(self):
        clean = ScenarioConfig()
        noisy = ScenarioConfig(n_hops=5, cross_utilization=0.3)
        capture_clean = collect_labelled_intervals(clean, 5000, mode=CollectionMode.HYBRID, seed=9)
        capture_noisy = collect_labelled_intervals(noisy, 5000, mode=CollectionMode.HYBRID, seed=9)
        assert np.var(capture_noisy.intervals["low"]) > 2 * np.var(capture_clean.intervals["low"])

    def test_too_small_capture_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            collect_labelled_intervals(ScenarioConfig(), 1)
        assert "n_intervals_per_class=1" in str(excinfo.value)

    def test_unknown_mode_rejected_with_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            collect_labelled_intervals(ScenarioConfig(), 100, mode="warp-speed")
        message = str(excinfo.value)
        assert "mode='warp-speed'" in message
        for valid in ("simulation", "hybrid", "analytic"):
            assert valid in message


class TestAnalyticNetworkNoise:
    def test_noise_preserves_mean_and_adds_variance(self, rng):
        scenario = ScenarioConfig(n_hops=3, cross_utilization=0.3)
        intervals = np.full(5000, 0.01)
        noisy = apply_analytic_network_noise(intervals, scenario, rng)
        assert noisy.shape[0] == intervals.shape[0]
        assert np.mean(noisy) == pytest.approx(0.01, rel=1e-3)
        assert np.var(noisy) == pytest.approx(scenario.net_piat_variance(), rel=0.1)
        assert np.all(noisy >= 0.0)

    def test_zero_utilization_is_identity(self, rng):
        scenario = ScenarioConfig()
        intervals = np.full(100, 0.01)
        assert np.array_equal(apply_analytic_network_noise(intervals, scenario, rng), intervals)
