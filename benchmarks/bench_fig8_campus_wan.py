"""Benchmark: regenerate Figure 8 (24-hour campus and WAN observations).

Hourly detection rate at sample size 1000 for a 3-hop campus path and a
15-hop WAN path carrying diurnal cross traffic.  Expected shape: the campus
curves stay high through the whole day; the WAN curves are lower, dip hardest
during the afternoon load peak, and still exceed ~65 % in the small hours —
the paper's argument that CIT padding is unsafe even behind many noisy
routers.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import CollectionMode, Fig8Config, Fig8Experiment
from repro.runner import SweepRunner

#: The 24-hour grid is 24 independent (network, hour) cells, the widest grid
#: in the suite — the benchmark runs it through the sweep runner's worker
#: pool exactly as ``repro fig8 --jobs 4`` would.
JOBS = 4


def test_fig8_campus_and_wan_day(benchmark, record_figure):
    config = Fig8Config(
        networks=("campus", "wan"),
        hours=tuple(range(0, 24, 2)),
        sample_size=1000,
        trials=20,
        mode=CollectionMode.HYBRID,
        seed=2003,
    )
    experiment = Fig8Experiment(config)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("fig8_campus_wan_24h", result.to_text())

    # Campus stays effective nearly all day.
    campus_variance = result.empirical_detection_rate["campus"]["variance"]
    assert min(campus_variance.values()) > 0.6
    # WAN: clearly lower at the busiest hour than the campus, but the attack
    # still works during the night.
    wan_variance = result.empirical_detection_rate["wan"]["variance"]
    assert wan_variance[2] > 0.65
    assert result.nightly_minus_midday("wan", "variance") > 0.05
