"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (or an ablation
beyond it) exactly once — the interesting output is the regenerated data, not
a latency distribution, so all benchmarks run with a single round.  The
regenerated rows are both printed (visible with ``pytest -s``) and appended to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Persist a regenerated figure report and echo it to stdout."""

    def _record(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}")
        return path

    return _record


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
