"""Ablation: adaptive traffic masking (the bandwidth-saving baseline).

Related work discussed in the paper (Timmerman's adaptive masking) reduces
the padding rate when the payload is quiet to save bandwidth.  The paper
argues this violates perfect secrecy because large-scale rate changes become
observable.  This benchmark quantifies that: it runs the adaptive gateway and
the CIT gateway on the same payload classes and compares (a) the adversary's
detection rate — for the adaptive gateway even the *sample mean* works,
because the padded rate itself tracks the payload — and (b) the bandwidth
each scheme spends.
"""

from __future__ import annotations

from conftest import run_once

from repro.adversary.detection import evaluate_attack
from repro.adversary.features import MeanFeature, VarianceFeature
from repro.adversary.tap import Tap
from repro.experiments import format_table
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.gateway import AdaptiveMaskingGateway, SenderGateway
from repro.padding.timer import ConstantInterval
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.sources import PoissonSource

SAMPLE_SIZE = 300
TRIALS = 12
RATES = {"low": 10.0, "high": 40.0}


def _capture(gateway_factory, seed_offset: str):
    """Capture padded-stream intervals and mean padded rate per payload class."""
    streams = RandomStreams(seed=41)
    intervals = {}
    padded_rates = {}
    for label, rate in RATES.items():
        simulator = Simulator()
        tap = Tap(simulator)
        gateway = gateway_factory(simulator, tap, streams.get(f"gw-{seed_offset}-{label}"))
        source = PoissonSource(
            simulator, gateway.accept_payload, rate=rate, rng=streams.get(f"pl-{seed_offset}-{label}")
        )
        gateway.start()
        source.start()
        needed_seconds = (SAMPLE_SIZE * TRIALS) * 0.01 * 1.3 + 5.0
        simulator.run(until=needed_seconds)
        captured = tap.intervals(since=2.0)
        intervals[label] = captured[: SAMPLE_SIZE * TRIALS]
        padded_rates[label] = tap.observed_rate_pps()
    return intervals, padded_rates


def _cit_gateway(simulator, tap, rng):
    return SenderGateway(
        simulator, ConstantInterval(0.01), output=tap, rng=rng, disturbance=InterruptDisturbance()
    )


def _adaptive_gateway(simulator, tap, rng):
    return AdaptiveMaskingGateway(
        simulator,
        ConstantInterval(0.01),
        output=tap,
        rng=rng,
        disturbance=InterruptDisturbance(),
        headroom=1.5,
        min_interval=2e-3,
        max_interval=0.05,
    )


def _sweep():
    results = {}
    for name, factory in (("CIT", _cit_gateway), ("adaptive", _adaptive_gateway)):
        train, _ = _capture(factory, "train")
        test, padded_rates = _capture(factory, "test")
        rates = {}
        for feature in (MeanFeature(), VarianceFeature()):
            outcome = evaluate_attack(
                train, test, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
            )
            rates[feature.name] = outcome.detection_rate
        results[name] = {
            "detection": rates,
            "padded_rate_low": padded_rates["low"],
            "padded_rate_high": padded_rates["high"],
        }
    return results


def test_adaptive_masking_leaks_rate(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = [
        (
            name,
            outcome["detection"]["mean"],
            outcome["detection"]["variance"],
            outcome["padded_rate_low"],
            outcome["padded_rate_high"],
        )
        for name, outcome in results.items()
    ]
    table = format_table(
        [
            "padding scheme",
            "detection (mean feature)",
            "detection (variance feature)",
            "padded pps @ 10 pps payload",
            "padded pps @ 40 pps payload",
        ],
        rows,
    )
    record_figure("ablation_adaptive_masking", table + "\n")

    # CIT hides the rate from the sample mean; adaptive masking hands it over.
    assert results["CIT"]["detection"]["mean"] < 0.75
    assert results["adaptive"]["detection"]["mean"] > 0.8
    # The bandwidth saving is real: the adaptive scheme's padded rate tracks
    # the payload (well below CIT's constant 100 pps at the low rate, and well
    # above it at the high rate), which is exactly the leak.
    assert results["adaptive"]["padded_rate_low"] < 90.0
    assert results["adaptive"]["padded_rate_high"] > 150.0
    assert results["CIT"]["padded_rate_low"] > 95.0
