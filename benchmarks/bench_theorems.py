"""Benchmark: the analytical framework itself (Section 4 / Figure 2).

Regenerates the closed-form detection-rate surfaces of Theorems 1-3 over a
grid of variance ratios and sample sizes, next to the exact Bayes rates for
the same Gaussian model, and times how long the whole analytical sweep takes
(it should be effectively instantaneous — that is the point of having closed
forms instead of simulating).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_mean_exact,
    detection_rate_variance,
    detection_rate_variance_exact,
)
from repro.experiments import format_table


def _sweep():
    ratios = (1.0, 1.2, 1.5, 2.0, 3.0, 5.0)
    sample_sizes = (10, 100, 1000, 10_000)
    rows = []
    for r in ratios:
        for n in sample_sizes:
            rows.append(
                (
                    r,
                    n,
                    detection_rate_mean(r),
                    detection_rate_mean_exact(r),
                    detection_rate_variance(r, n),
                    detection_rate_variance_exact(r, n),
                    detection_rate_entropy(r, n),
                )
            )
    return rows


def test_theorem_surfaces(benchmark, record_figure):
    rows = run_once(benchmark, _sweep)
    table = format_table(
        [
            "r",
            "n",
            "mean (thm 1)",
            "mean (exact)",
            "variance (thm 2)",
            "variance (exact)",
            "entropy (thm 3)",
        ],
        rows,
    )
    record_figure("theorem_surfaces", table + "\n")

    values = np.array([row[2:] for row in rows], dtype=float)
    assert np.all(values >= 0.5) and np.all(values <= 1.0)
    # The approximations never exceed the exact Bayes rate by a wide margin.
    assert np.all(values[:, 2] <= values[:, 3] + 0.05)
