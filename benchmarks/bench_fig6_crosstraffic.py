"""Benchmark: regenerate Figure 6 (CIT padding behind a shared, loaded router).

Detection rate at a fixed sample size versus the shared link's utilization.
Expected shape: detection decreases as cross traffic (and hence ``sigma_net``)
grows; sample entropy degrades more gracefully than sample variance; the
sample mean stays near the 50 % floor throughout.

Both sweeps run their utilization grids through the parallel sweep runner
(one worker per grid cell, up to ``JOBS``), so the benchmark measures the
fanned-out wall-clock the CLI's ``--jobs`` users actually see.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import CollectionMode, Fig6Config, Fig6Experiment
from repro.runner import SweepRunner

JOBS = 4


def test_fig6_cross_traffic_simulation(benchmark, record_figure):
    """Event-driven reproduction at three utilization points.

    The full event simulation of the busiest points is the slowest part of the
    whole benchmark suite (thousands of cross packets per simulated second),
    so the simulated sweep uses three representative utilizations; the hybrid
    sweep below covers the full x-axis of the figure.
    """
    config = Fig6Config(
        utilizations=(0.05, 0.2, 0.4),
        sample_size=500,
        trials=8,
        mode=CollectionMode.SIMULATION,
        seed=2003,
    )
    experiment = Fig6Experiment(config)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("fig6_cross_traffic_simulation", result.to_text())

    assert result.variance_ratios[0.4] < result.variance_ratios[0.05]
    for feature in ("variance", "entropy"):
        assert result.empirical_detection_rate[feature][0.05] > 0.75


def test_fig6_cross_traffic_full_sweep_hybrid(benchmark, record_figure):
    """The figure's full utilization sweep using the hybrid (M/D/1) network model."""
    config = Fig6Config(
        utilizations=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
        sample_size=1000,
        trials=20,
        mode=CollectionMode.HYBRID,
        seed=2003,
    )
    experiment = Fig6Experiment(config)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("fig6_cross_traffic_full_sweep", result.to_text())

    for feature in ("variance", "entropy"):
        rates = result.empirical_detection_rate[feature]
        assert rates[0.05] > 0.9
        assert rates[0.5] < rates[0.05]
    assert all(rate < 0.75 for rate in result.empirical_detection_rate["mean"].values())
