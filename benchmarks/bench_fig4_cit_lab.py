"""Benchmark: regenerate Figure 4 (CIT padding, no cross traffic).

Figure 4(a): conditional PIAT distributions of the padded stream (same mean,
high-rate slightly wider, approximately normal).
Figure 4(b): detection rate versus sample size for sample mean, sample
variance and sample entropy — empirical vs. Theorems 1-3 vs. exact Bayes.

Expected shape (matching the paper): the sample-mean curve stays near the
50 % floor at every sample size, while sample variance and sample entropy
climb with the sample size and reach ~100 % around n = 1000.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import CollectionMode, Fig4Config, Fig4Experiment


def test_fig4_detection_vs_sample_size(benchmark, record_figure):
    """Full event-driven reproduction of both Figure 4 panels."""
    config = Fig4Config(
        sample_sizes=(10, 50, 100, 200, 500, 1000, 2000),
        trials=20,
        mode=CollectionMode.SIMULATION,
        seed=2003,
    )
    result = run_once(benchmark, Fig4Experiment(config).run)
    record_figure("fig4_cit_no_cross_traffic", result.to_text())

    # Sanity of the regenerated shape (who wins, roughly by how much).
    assert result.empirical_detection_rate["variance"][1000] > 0.9
    assert result.empirical_detection_rate["entropy"][1000] > 0.9
    assert result.empirical_detection_rate["mean"][2000] < 0.75
    assert result.r_model > 1.3


def test_fig4_analytic_fast_path(benchmark, record_figure):
    """The same experiment on the pure Gaussian-model fast path (sanity ablation)."""
    config = Fig4Config(
        sample_sizes=(10, 100, 1000),
        trials=30,
        mode=CollectionMode.ANALYTIC,
        seed=2003,
    )
    result = run_once(benchmark, Fig4Experiment(config).run)
    record_figure("fig4_analytic_fast_path", result.to_text())
    assert result.empirical_detection_rate["variance"][1000] > 0.9
