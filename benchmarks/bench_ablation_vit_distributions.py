"""Ablation: does the VIT interval *distribution family* matter?

The paper models the VIT timer as normally distributed but its theory depends
only on the variance the timer contributes.  This ablation runs the Figure 5
point ``sigma_T = 0.3 ms`` with four different interval families at identical
``(tau, sigma_T)`` and compares the resulting detection rates — they should
all collapse toward the 50 % floor, confirming that the defence needs
variance, not any particular shape.

The sweep is the registered ``ablation_vit`` experiment
(:mod:`repro.experiments.ablations`) at its ``paper`` preset — the same grid
``repro run ablation_vit --preset paper --seed 7`` runs — whose family axis
is a *policy axis* of a grid product, fanned out across ``JOBS`` workers.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import get_experiment
from repro.runner import SweepRunner

JOBS = 4


def test_vit_distribution_family_ablation(benchmark, record_figure):
    experiment = get_experiment("ablation_vit", preset="paper", seed=7)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("ablation_vit_distributions", result.to_text())

    # Every family with the same sigma_T suppresses the attack comparably.
    for family in experiment.config.families:
        assert result.empirical_detection_rate["variance"][family] < 0.75
        assert result.empirical_detection_rate["entropy"][family] < 0.75
