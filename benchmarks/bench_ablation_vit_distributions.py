"""Ablation: does the VIT interval *distribution family* matter?

The paper models the VIT timer as normally distributed but its theory depends
only on the variance the timer contributes.  This ablation runs the Figure 5
point ``sigma_T = 0.3 ms`` with four different interval families at identical
``(tau, sigma_T)`` and compares the resulting detection rates — they should
all collapse toward the 50 % floor, confirming that the defence needs
variance, not any particular shape.

The family sweep is a *policy axis* of a :class:`repro.runner.GridSpec`
product executed by the parallel sweep runner, so the four event simulations
fan out across ``JOBS`` workers.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import CollectionMode, ScenarioConfig, format_table
from repro.padding.policies import PaddingPolicy
from repro.runner import GridSpec, SweepRunner

SIGMA_T = 3e-4
SAMPLE_SIZE = 1000
TRIALS = 12
FAMILIES = ("normal", "uniform", "exponential", "lognormal")
JOBS = 4


def _policy(family: str) -> PaddingPolicy:
    return PaddingPolicy(
        name=f"VIT-{family}", kind="VIT", mean_interval=0.01, sigma_t=SIGMA_T, family=family
    )


def _grid() -> GridSpec:
    return GridSpec.product(
        "ablation_vit",
        ScenarioConfig(),
        policies=[_policy(family) for family in FAMILIES],
        seeds=(7,),
        sample_sizes=(SAMPLE_SIZE,),
        trials=TRIALS,
        mode=CollectionMode.SIMULATION,
    )


def _sweep() -> dict:
    grid = _grid()
    report = SweepRunner(jobs=JOBS).run(grid.cells())
    return {
        family: {
            name: report[f"ablation_vit/policy=VIT-{family}"].empirical_detection_rate[name][
                SAMPLE_SIZE
            ]
            for name in ("mean", "variance", "entropy")
        }
        for family in FAMILIES
    }


def test_vit_distribution_family_ablation(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = [
        (family, rates["mean"], rates["variance"], rates["entropy"])
        for family, rates in results.items()
    ]
    table = format_table(["VIT family", "mean", "variance", "entropy"], rows)
    record_figure("ablation_vit_distributions", table + "\n")

    # Every family with the same sigma_T suppresses the attack comparably.
    for rates in results.values():
        assert rates["variance"] < 0.75
        assert rates["entropy"] < 0.75
