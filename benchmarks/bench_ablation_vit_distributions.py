"""Ablation: does the VIT interval *distribution family* matter?

The paper models the VIT timer as normally distributed but its theory depends
only on the variance the timer contributes.  This ablation runs the Figure 5
point ``sigma_T = 0.3 ms`` with four different interval families at identical
``(tau, sigma_T)`` and compares the resulting detection rates — they should
all collapse toward the 50 % floor, confirming that the defence needs
variance, not any particular shape.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.adversary.detection import evaluate_attack
from repro.adversary.features import default_features
from repro.experiments import CollectionMode, ScenarioConfig, collect_labelled_intervals, format_table
from repro.padding.policies import PaddingPolicy

SIGMA_T = 3e-4
SAMPLE_SIZE = 1000
TRIALS = 12
FAMILIES = ("normal", "uniform", "exponential", "lognormal")


def _evaluate_family(family: str) -> dict:
    policy = PaddingPolicy(
        name=f"VIT-{family}", kind="VIT", mean_interval=0.01, sigma_t=SIGMA_T, family=family
    )
    scenario = replace(ScenarioConfig(), policy=policy)
    intervals = SAMPLE_SIZE * TRIALS
    train = collect_labelled_intervals(scenario, intervals, CollectionMode.SIMULATION, seed=7, seed_offset="train")
    test = collect_labelled_intervals(scenario, intervals, CollectionMode.SIMULATION, seed=7, seed_offset="test")
    rates = {}
    for name, feature in default_features().items():
        result = evaluate_attack(
            train.intervals, test.intervals, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
        )
        rates[name] = result.detection_rate
    return rates


def _sweep() -> dict:
    return {family: _evaluate_family(family) for family in FAMILIES}


def test_vit_distribution_family_ablation(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = [
        (family, rates["mean"], rates["variance"], rates["entropy"])
        for family, rates in results.items()
    ]
    table = format_table(["VIT family", "mean", "variance", "entropy"], rows)
    record_figure("ablation_vit_distributions", table + "\n")

    # Every family with the same sigma_T suppresses the attack comparably.
    for rates in results.values():
        assert rates["variance"] < 0.75
        assert rates["entropy"] < 0.75
