"""Extension benchmark: more than two payload rates (Section 6).

The paper's evaluation distinguishes two payload rates and notes that the
technique "can be easily extended to multiple ones by performing more
off-line training".  This benchmark runs the attack against four payload
rates (10/20/40/80 pps) under CIT padding with no cross traffic and reports
the per-class and overall detection rates, plus the same attack against VIT
padding to confirm the countermeasure still works in the multi-class setting.
"""

from __future__ import annotations

from conftest import run_once

from repro.adversary.detection import train_classifier, empirical_detection_rate
from repro.adversary.features import VarianceFeature
from repro.adversary.multiclass import random_guessing_rate
from repro.experiments import format_table
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.policies import cit_policy, vit_policy
from repro.core.model import GaussianPIATModel
from repro.sim.random import RandomStreams

RATES_PPS = (10.0, 20.0, 40.0, 80.0)
SAMPLE_SIZE = 2000
TRIALS = 25


def _intervals_for(policy, seed_offset: str) -> dict:
    """Labelled captures for each rate from the calibrated Gaussian model.

    The multi-class experiment needs one capture per rate; the analytic model
    (gateway disturbance variance as a function of the payload rate) keeps the
    four-class sweep fast while preserving the quantity the classifier uses.
    """
    disturbance = InterruptDisturbance()
    streams = RandomStreams(seed=31)
    captures = {}
    for rate in RATES_PPS:
        gw_variance = disturbance.piat_variance(rate)
        model = GaussianPIATModel.from_components(
            gw_variance_low=gw_variance,
            gw_variance_high=gw_variance,
            timer_variance=policy.timer_variance,
            tau=policy.mean_interval,
        )
        rng = streams.get(f"{seed_offset}-{rate}")
        captures[f"{rate:.0f}pps"] = model.sample_intervals("low", SAMPLE_SIZE * TRIALS, rng=rng)
    return captures


def _evaluate(policy) -> dict:
    feature = VarianceFeature()
    train = _intervals_for(policy, "train")
    test = _intervals_for(policy, "test")
    classifier = train_classifier(train, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS)
    result = empirical_detection_rate(
        classifier, test, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
    )
    return {
        "overall": result.detection_rate,
        "per_class": result.per_class_rates,
    }


def _sweep():
    return {
        "CIT": _evaluate(cit_policy()),
        "VIT (sigma_T=1ms)": _evaluate(vit_policy(sigma_t=1e-3)),
    }


def test_multiclass_extension(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = []
    for policy_name, outcome in results.items():
        for label, rate in sorted(outcome["per_class"].items()):
            rows.append((policy_name, label, rate))
        rows.append((policy_name, "overall", outcome["overall"]))
    table = format_table(["policy", "payload rate", "detection rate"], rows)
    record_figure("extension_multiclass", table + "\n")

    guessing = random_guessing_rate(len(RATES_PPS))
    # CIT leaks even among four candidate rates; VIT pins the adversary near
    # four-way random guessing.
    assert results["CIT"]["overall"] > 2.5 * guessing
    assert results["VIT (sigma_T=1ms)"]["overall"] < 1.6 * guessing
