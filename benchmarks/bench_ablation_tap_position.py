"""Ablation: where the adversary taps the unprotected path.

The paper studies two extreme vantage points — right at the sender gateway's
output (best case for the attacker) and right in front of the receiver
gateway, behind every congested router (worst case).  This ablation sweeps the
number of loaded hops between the gateway and the tap and reports the
detection rate at each position, quantifying how much protection "distance
behind noisy routers" buys for a CIT system (the paper's answer: not enough).

The hop sweep runs as explicit :class:`repro.runner.GridPoint` objects (the
0-hop tap needs zero cross utilization, so it is not a pure axis product)
through the parallel sweep runner.  The hybrid cells are two-level: every hop
count shares one cached gateway capture, so the sweep simulates the gateway
once instead of once per position.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.experiments import CollectionMode, ScenarioConfig, format_table
from repro.runner import GridPoint, GridSpec, SweepRunner

SAMPLE_SIZE = 1000
TRIALS = 15
HOP_COUNTS = (0, 1, 3, 8, 15)
PER_HOP_UTILIZATION = 0.2
JOBS = 4


def _scenario(hops: int) -> ScenarioConfig:
    return replace(
        ScenarioConfig(),
        n_hops=hops,
        cross_utilization=PER_HOP_UTILIZATION if hops else 0.0,
    )


def _grid() -> GridSpec:
    points = [
        GridPoint(
            key=f"ablation_tap/hops={hops}",
            scenario=_scenario(hops),
            shared_capture=True,
            capture_key="ablation_tap/gateway-capture",
            # One gateway capture for every tap position, but independent
            # noise draws per position.
            noise_offsets=(f"train-hops{hops}", f"test-hops{hops}"),
        )
        for hops in HOP_COUNTS
    ]
    # The hybrid mode keeps the 15-hop point tractable while sharing the same
    # gateway capture across every tap position.
    return GridSpec.from_points(
        "ablation_tap",
        points,
        seeds=(23,),
        sample_sizes=(SAMPLE_SIZE,),
        trials=TRIALS,
        mode=CollectionMode.HYBRID,
    )


def _sweep() -> dict:
    grid = _grid()
    report = SweepRunner(jobs=JOBS).run(grid.cells())
    results = {}
    for hops in HOP_COUNTS:
        cell = report[f"ablation_tap/hops={hops}"]
        rates = {
            name: cell.empirical_detection_rate[name][SAMPLE_SIZE]
            for name in ("mean", "variance", "entropy")
        }
        rates["r"] = _scenario(hops).variance_ratio()
        results[hops] = rates
    return results


def test_tap_position_ablation(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = [
        (hops, rates["r"], rates["mean"], rates["variance"], rates["entropy"])
        for hops, rates in results.items()
    ]
    table = format_table(
        ["hops between GW1 and tap", "r", "mean", "variance", "entropy"], rows
    )
    record_figure("ablation_tap_position", table + "\n")

    # Detection is best right at the gateway and degrades with distance...
    assert results[0]["variance"] > results[15]["variance"] - 0.05
    assert results[0]["variance"] > 0.9
    # ...but a moderate number of loaded hops does not push it to the floor,
    # which is the paper's warning about relying on network noise.
    assert results[3]["entropy"] > 0.6
