"""Ablation: where the adversary taps the unprotected path.

The paper studies two extreme vantage points — right at the sender gateway's
output (best case for the attacker) and right in front of the receiver
gateway, behind every congested router (worst case).  This ablation sweeps the
number of loaded hops between the gateway and the tap and reports the
detection rate at each position, quantifying how much protection "distance
behind noisy routers" buys for a CIT system (the paper's answer: not enough).

The sweep is the registered ``ablation_tap`` experiment
(:mod:`repro.experiments.ablations`) at its ``paper`` preset — the same grid
``repro run ablation_tap --preset paper --seed 23`` runs.  Its hybrid cells
are two-level: every hop count shares one cached gateway capture, so the
sweep simulates the gateway once instead of once per position.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import get_experiment
from repro.runner import SweepRunner

JOBS = 4


def test_tap_position_ablation(benchmark, record_figure):
    experiment = get_experiment("ablation_tap", preset="paper", seed=23)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("ablation_tap_position", result.to_text())

    variance = result.empirical_detection_rate["variance"]
    # Detection is best right at the gateway and degrades with distance...
    assert variance[0] > variance[15] - 0.05
    assert variance[0] > 0.9
    # ...but a moderate number of loaded hops does not push it to the floor,
    # which is the paper's warning about relying on network noise.
    assert result.empirical_detection_rate["entropy"][3] > 0.6
