"""Ablation: where the adversary taps the unprotected path.

The paper studies two extreme vantage points — right at the sender gateway's
output (best case for the attacker) and right in front of the receiver
gateway, behind every congested router (worst case).  This ablation sweeps the
number of loaded hops between the gateway and the tap and reports the
detection rate at each position, quantifying how much protection "distance
behind noisy routers" buys for a CIT system (the paper's answer: not enough).
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.adversary.detection import evaluate_attack
from repro.adversary.features import default_features
from repro.experiments import CollectionMode, ScenarioConfig, collect_labelled_intervals, format_table

SAMPLE_SIZE = 1000
TRIALS = 15
HOP_COUNTS = (0, 1, 3, 8, 15)
PER_HOP_UTILIZATION = 0.2


def _evaluate(hops: int) -> dict:
    scenario = replace(
        ScenarioConfig(),
        n_hops=hops,
        cross_utilization=PER_HOP_UTILIZATION if hops else 0.0,
    )
    intervals = SAMPLE_SIZE * TRIALS
    # The hybrid mode keeps the 15-hop point tractable while using the same
    # gateway simulation at every position.
    train = collect_labelled_intervals(scenario, intervals, CollectionMode.HYBRID, seed=23, seed_offset="train")
    test = collect_labelled_intervals(scenario, intervals, CollectionMode.HYBRID, seed=23, seed_offset="test")
    rates = {}
    for name, feature in default_features().items():
        result = evaluate_attack(
            train.intervals, test.intervals, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
        )
        rates[name] = result.detection_rate
    rates["r"] = scenario.variance_ratio()
    return rates


def _sweep():
    return {hops: _evaluate(hops) for hops in HOP_COUNTS}


def test_tap_position_ablation(benchmark, record_figure):
    results = run_once(benchmark, _sweep)
    rows = [
        (hops, rates["r"], rates["mean"], rates["variance"], rates["entropy"])
        for hops, rates in results.items()
    ]
    table = format_table(
        ["hops between GW1 and tap", "r", "mean", "variance", "entropy"], rows
    )
    record_figure("ablation_tap_position", table + "\n")

    # Detection is best right at the gateway and degrades with distance...
    assert results[0]["variance"] > results[15]["variance"] - 0.05
    assert results[0]["variance"] > 0.9
    # ...but a moderate number of loaded hops does not push it to the floor,
    # which is the paper's warning about relying on network noise.
    assert results[3]["entropy"] > 0.6
