"""Benchmark: regenerate Figure 5 (VIT padding).

Figure 5(a): empirical detection rate versus the timer standard deviation
``sigma_T`` at a fixed sample size — the rate collapses to the 50 % floor as
``sigma_T`` exceeds the gateway's own jitter.
Figure 5(b): theoretical sample size needed for 99 % detection versus
``sigma_T`` — it explodes beyond anything an adversary could collect (the
paper quotes > 1e11 intervals at ``sigma_T`` = 1 ms).

The experiment is resolved through the :mod:`repro.api` registry — the same
object ``repro run fig5 --preset paper --set trials=15`` builds — and its
``sigma_T`` sweep runs through the parallel sweep runner (one worker per grid
cell, up to ``JOBS``), so the benchmark measures the fanned-out wall-clock
the CLI's ``--jobs`` users actually see.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import get_experiment
from repro.runner import SweepRunner

JOBS = 4


def test_fig5_vit_padding(benchmark, record_figure):
    experiment = get_experiment(
        "fig5", preset="paper", seed=2003, overrides={"trials": 15}
    )
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("fig5_vit_padding", result.to_text())

    # Shape checks: CIT point is detectable, the largest sigma_T is not.
    # (Thresholds allow for the sampling noise of a 15-trial empirical point.)
    assert result.empirical_detection_rate["variance"][0.0] > 0.9
    assert result.empirical_detection_rate["entropy"][0.0] > 0.75
    for feature in ("variance", "entropy"):
        assert result.empirical_detection_rate[feature][1e-3] < 0.65
    # Figure 5(b): required sample size grows without practical bound.
    assert result.required_sample_for_target["variance"][1e-3] > 1e8
    assert result.required_sample_for_target["entropy"][1e-2] > 1e12
