"""Ablation: adversary estimator settings.

Two knobs of the adversary's pipeline are fixed constants in the paper:

* the histogram bin width of the sample-entropy estimator, and
* the kernel bandwidth rule of the KDE used to model feature PDFs.

This ablation sweeps both on the Figure 4 scenario (CIT, no cross traffic,
sample size 1000) to show that the headline result — variance/entropy succeed,
mean fails — is not an artefact of a lucky estimator setting.

Both knobs are ordinary cell fields (``entropy_bin_width``,
``kde_bandwidth``), so the whole ablation is one cell list executed by the
parallel sweep runner; numeric bandwidths are multiples of the Silverman
bandwidth of the pooled training features.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import CollectionMode, ScenarioConfig, format_table
from repro.runner import SweepCell, SweepRunner

SAMPLE_SIZE = 1000
TRIALS = 15
BIN_WIDTHS = (5e-6, 2e-5, 5e-5, 2e-4)
BANDWIDTHS = ("silverman", "scott", 0.5, 2.0)
JOBS = 4


def _cells() -> list:
    scenario = ScenarioConfig()
    common = dict(
        scenario=scenario,
        sample_sizes=(SAMPLE_SIZE,),
        trials=TRIALS,
        mode=CollectionMode.SIMULATION,
        seed=17,
    )
    cells = [
        SweepCell(
            key=f"ablation_est/bin_width={bin_width!r}",
            features=("entropy",),
            entropy_bin_width=bin_width,
            **common,
        )
        for bin_width in BIN_WIDTHS
    ]
    cells += [
        SweepCell(
            key=f"ablation_est/bandwidth={bandwidth!r}",
            features=("variance",),
            kde_bandwidth=bandwidth,
            **common,
        )
        for bandwidth in BANDWIDTHS
    ]
    return cells


def _sweep():
    report = SweepRunner(jobs=JOBS).run(_cells())
    bin_rows = [
        (
            bin_width,
            report[f"ablation_est/bin_width={bin_width!r}"].empirical_detection_rate[
                "entropy"
            ][SAMPLE_SIZE],
        )
        for bin_width in BIN_WIDTHS
    ]
    bandwidth_rows = [
        (
            str(bandwidth),
            report[f"ablation_est/bandwidth={bandwidth!r}"].empirical_detection_rate[
                "variance"
            ][SAMPLE_SIZE],
        )
        for bandwidth in BANDWIDTHS
    ]
    return bin_rows, bandwidth_rows


def test_estimator_settings_ablation(benchmark, record_figure):
    bin_rows, bandwidth_rows = run_once(benchmark, _sweep)
    report = (
        "Entropy histogram bin width (CIT, n=1000)\n"
        + format_table(["bin width (s)", "detection rate"], bin_rows)
        + "\n\nKDE bandwidth for the variance feature (CIT, n=1000)\n"
        + format_table(["bandwidth rule / multiple of Silverman", "detection rate"], bandwidth_rows)
        + "\n"
    )
    record_figure("ablation_estimator_settings", report)

    # The attack succeeds across a decade of bin widths and bandwidth choices.
    assert sum(rate > 0.85 for _, rate in bin_rows) >= 3
    assert all(rate > 0.85 for _, rate in bandwidth_rows)
