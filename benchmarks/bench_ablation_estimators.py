"""Ablation: adversary estimator settings.

Two knobs of the adversary's pipeline are fixed constants in the paper:

* the histogram bin width of the sample-entropy estimator, and
* the kernel bandwidth rule of the KDE used to model feature PDFs.

This ablation sweeps both on the Figure 4 scenario (CIT, no cross traffic,
sample size 1000) to show that the headline result — variance/entropy succeed,
mean fails — is not an artefact of a lucky estimator setting.

The sweep is the registered ``ablation_estimators`` experiment
(:mod:`repro.experiments.ablations`) at its ``paper`` preset — the same grid
``repro run ablation_estimators --preset paper --seed 17`` runs — executed
here through the parallel sweep runner.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import get_experiment
from repro.runner import SweepRunner

JOBS = 4


def test_estimator_settings_ablation(benchmark, record_figure):
    experiment = get_experiment("ablation_estimators", preset="paper", seed=17)
    result = run_once(benchmark, lambda: experiment.run(runner=SweepRunner(jobs=JOBS)))
    record_figure("ablation_estimator_settings", result.to_text())

    # The attack succeeds across a decade of bin widths and bandwidth choices.
    bin_rates = list(result.detection_rate_by_bin_width.values())
    assert sum(rate > 0.85 for rate in bin_rates) >= 3
    assert all(rate > 0.85 for rate in result.detection_rate_by_bandwidth.values())
