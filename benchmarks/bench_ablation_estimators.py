"""Ablation: adversary estimator settings.

Two knobs of the adversary's pipeline are fixed constants in the paper:

* the histogram bin width of the sample-entropy estimator, and
* the kernel bandwidth rule of the KDE used to model feature PDFs.

This ablation sweeps both on the Figure 4 scenario (CIT, no cross traffic,
sample size 1000) to show that the headline result — variance/entropy succeed,
mean fails — is not an artefact of a lucky estimator setting.
"""

from __future__ import annotations

from conftest import run_once

from repro.adversary.detection import evaluate_attack
from repro.adversary.features import EntropyFeature, VarianceFeature
from repro.experiments import CollectionMode, ScenarioConfig, collect_labelled_intervals, format_table

SAMPLE_SIZE = 1000
TRIALS = 15
BIN_WIDTHS = (5e-6, 2e-5, 5e-5, 2e-4)
BANDWIDTHS = ("silverman", "scott", 0.5, 2.0)


def _collect():
    scenario = ScenarioConfig()
    intervals = SAMPLE_SIZE * TRIALS
    train = collect_labelled_intervals(scenario, intervals, CollectionMode.SIMULATION, seed=17, seed_offset="train")
    test = collect_labelled_intervals(scenario, intervals, CollectionMode.SIMULATION, seed=17, seed_offset="test")
    return train, test


def _sweep():
    train, test = _collect()
    bin_rows = []
    for bin_width in BIN_WIDTHS:
        result = evaluate_attack(
            train.intervals,
            test.intervals,
            EntropyFeature(bin_width=bin_width),
            SAMPLE_SIZE,
            max_samples_per_class=TRIALS,
        )
        bin_rows.append((bin_width, result.detection_rate))
    bandwidth_rows = []
    for bandwidth in BANDWIDTHS:
        # Bandwidth applies to the KDE over feature values; scale factors are
        # relative multipliers of the Silverman choice when numeric.
        feature = VarianceFeature()
        from repro.adversary.detection import empirical_detection_rate, train_classifier

        if isinstance(bandwidth, str):
            kde_bandwidth = bandwidth
        else:
            # express numeric entries as a multiple of the Silverman bandwidth
            from repro.adversary.detection import extract_feature_samples
            from repro.stats.kde import silverman_bandwidth

            reference = extract_feature_samples(
                train.intervals["low"], feature, SAMPLE_SIZE, max_samples=TRIALS
            )
            kde_bandwidth = bandwidth * silverman_bandwidth(reference)
        classifier = train_classifier(
            train.intervals,
            feature,
            SAMPLE_SIZE,
            max_samples_per_class=TRIALS,
            bandwidth=kde_bandwidth,
        )
        result = empirical_detection_rate(
            classifier, test.intervals, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
        )
        bandwidth_rows.append((str(bandwidth), result.detection_rate))
    return bin_rows, bandwidth_rows


def test_estimator_settings_ablation(benchmark, record_figure):
    bin_rows, bandwidth_rows = run_once(benchmark, _sweep)
    report = (
        "Entropy histogram bin width (CIT, n=1000)\n"
        + format_table(["bin width (s)", "detection rate"], bin_rows)
        + "\n\nKDE bandwidth for the variance feature (CIT, n=1000)\n"
        + format_table(["bandwidth rule / multiple of Silverman", "detection rate"], bandwidth_rows)
        + "\n"
    )
    record_figure("ablation_estimator_settings", report)

    # The attack succeeds across a decade of bin widths and bandwidth choices.
    assert sum(rate > 0.85 for _, rate in bin_rows) >= 3
    assert all(rate > 0.85 for _, rate in bandwidth_rows)
